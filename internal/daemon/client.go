package daemon

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sodee"
	"repro/internal/wire"
)

// Client is a control-plane connection to one daemon — what sodctl and
// the integration tests use to drive a cluster from outside. Clients use
// negative node ids so they can never collide with (or be mistaken for)
// cluster members; a daemon answers their RPCs but never gossips to
// them.
type Client struct {
	tr   *netsim.TCPTransport
	peer int

	// watches routes streamed opEvent frames to Watch subscribers by
	// generation — a client-chosen per-stream nonce, so several watches
	// of one job coexist and frames from a cancelled stream can never be
	// mistaken for a successor's.
	mu       sync.Mutex
	watchGen uint64
	watches  map[uint64]*clientWatch
}

type clientWatch struct {
	gen    uint64
	ch     chan sodee.JobEvent
	closed bool
	// all marks a WatchAll stream: terminal events pass through without
	// ending it (the stream spans every job in the cluster).
	all bool
	// The daemon numbers a stream's frames, but one-way frames are
	// handled concurrently by the transport; pending holds early arrivals
	// until their predecessors land so events deliver in stream order.
	next    uint64
	pending map[uint64]sodee.JobEvent
}

// ctlSeq disambiguates several clients inside one process.
var ctlSeq atomic.Int64

// Dial connects a control client to the daemon at addr and verifies the
// control-protocol version.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 0) }

// DialTimeout is Dial with a bound on how long a dead address is retried
// (0 keeps the transport's default, ~5s).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	id := -(int(ctlSeq.Add(1))*1_000_000 + os.Getpid()%1_000_000 + 1)
	tr, err := netsim.NewTCPTransport(id, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		tr.SetDialWindow(0, timeout)
	}
	c := &Client{tr: tr, watches: make(map[uint64]*clientWatch)}
	// Register the stream plumbing before the daemon can possibly send a
	// frame: events for a watch may start arriving the moment the watch
	// RPC is acked.
	tr.Handle(netsim.KindControl, c.handleControl)
	tr.SetPeerDownHook(func(int) { c.endAllWatches() })
	peer, err := tr.Connect(addr)
	if err != nil {
		tr.Close() //nolint:errcheck
		return nil, err
	}
	c.peer = peer
	if err := helloCheck(tr, peer); err != nil {
		tr.Close() //nolint:errcheck
		return nil, err
	}
	return c, nil
}

// Close releases the connection and ends every live watch.
func (c *Client) Close() {
	c.tr.Close() //nolint:errcheck
	c.endAllWatches()
}

// Peer returns the daemon's node id.
func (c *Client) Peer() int { return c.peer }

func (c *Client) call(payload []byte) ([]byte, error) {
	return c.tr.Call(c.peer, netsim.KindControl, payload)
}

// MemberInfo is one row of a daemon's membership view.
type MemberInfo struct {
	Node       int
	State      membership.State
	SinceHeard time.Duration
	Addr       string
}

// Members queries the daemon's membership view; self is the daemon's
// own id.
func (c *Client) Members() (self int, members []MemberInfo, err error) {
	w := wire.NewWriter(1)
	w.Byte(opMembers)
	reply, err := c.call(w.Bytes())
	if err != nil {
		return 0, nil, err
	}
	r := wire.NewReader(reply)
	self = int(r.Varint())
	n := int(r.Uvarint())
	for i := 0; i < n && r.Err() == nil; i++ {
		members = append(members, MemberInfo{
			Node:       int(r.Varint()),
			State:      membership.State(r.Byte()),
			SinceHeard: time.Duration(r.Uvarint()) * time.Millisecond,
			Addr:       string(r.Blob()),
		})
	}
	return self, members, r.Err()
}

// Submit starts a job on the daemon and returns its id.
func (c *Client) Submit(method string, args ...int64) (uint64, error) {
	return c.submit(opSubmit, method, args...)
}

// SubmitChain starts a chain-owned job: the daemon's chain planner
// places its stack as a multi-segment forward pipeline (the daemon must
// run with -chain).
func (c *Client) SubmitChain(method string, args ...int64) (uint64, error) {
	return c.submit(opSubmitChain, method, args...)
}

func (c *Client) submit(op byte, method string, args ...int64) (uint64, error) {
	w := wire.NewWriter(64)
	w.Byte(op)
	w.Blob([]byte(method))
	w.Uvarint(uint64(len(args)))
	for _, a := range args {
		w.Varint(a)
	}
	reply, err := c.call(w.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(reply)
	id := r.Uvarint()
	return id, r.Err()
}

// Wait blocks (up to timeout) for a submitted job's result. done is
// false on timeout; a non-empty errMsg is the job's failure.
func (c *Client) Wait(job uint64, timeout time.Duration) (result int64, done bool, errMsg string, err error) {
	w := wire.NewWriter(24)
	w.Byte(opWait)
	w.Uvarint(job)
	w.Uvarint(uint64(timeout / time.Millisecond))
	reply, err := c.call(w.Bytes())
	if err != nil {
		return 0, false, "", err
	}
	r := wire.NewReader(reply)
	done = r.Byte() != 0
	result = r.Varint()
	errMsg = string(r.Blob())
	return result, done, errMsg, r.Err()
}

// waitChunk bounds one long-poll round trip of WaitContext, so a context
// canceled mid-wait is noticed within this lag.
const waitChunk = 500 * time.Millisecond

// WaitContext blocks until the job completes or ctx ends. It long-polls
// the daemon in bounded chunks; a non-empty errMsg is the job's failure,
// err covers the transport and the context.
func (c *Client) WaitContext(ctx context.Context, job uint64) (result int64, errMsg string, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return 0, "", err
		}
		chunk := waitChunk
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem < chunk {
				chunk = rem
			}
			if chunk <= 0 {
				return 0, "", context.DeadlineExceeded
			}
		}
		res, done, errMsg, err := c.Wait(job, chunk)
		if err != nil {
			return 0, "", err
		}
		if done {
			return res, errMsg, nil
		}
	}
}

// --- job event streaming ---

// Watch subscribes to a job's lifecycle events. The daemon replays the
// job's retained history first, then streams live events; the channel is
// closed after the job's terminal event, when cancel is called, or when
// the connection to the daemon dies. A job may be watched any number of
// times concurrently; every subscription gets the full stream.
func (c *Client) Watch(job uint64) (<-chan sodee.JobEvent, func(), error) {
	c.mu.Lock()
	c.watchGen++
	w := &clientWatch{
		gen:     c.watchGen,
		ch:      make(chan sodee.JobEvent, 128),
		pending: make(map[uint64]sodee.JobEvent),
	}
	c.watches[w.gen] = w
	c.mu.Unlock()

	req := wire.NewWriter(20)
	req.Byte(opWatch)
	req.Uvarint(job)
	req.Uvarint(w.gen)
	if _, err := c.call(req.Bytes()); err != nil {
		c.endWatch(w.gen)
		return nil, nil, err
	}
	cancel := func() {
		if c.endWatch(w.gen) {
			// Tell the daemon to stop streaming; best effort — it also
			// notices when its sends start failing.
			uw := wire.NewWriter(12)
			uw.Byte(opUnwatch)
			uw.Uvarint(w.gen)
			c.call(uw.Bytes()) //nolint:errcheck
		}
	}
	return w.ch, cancel, nil
}

// WatchAll subscribes to the cluster-wide event stream: every job event
// from every node, merged by the daemon's hub. The channel never closes
// on a job's terminal event — it closes when cancel is called, when the
// connection dies, or when the daemon evicts this client for not keeping
// up (the backpressure contract: non-terminal events may be coalesced
// behind EvLagged markers; a consumer too slow to keep even job outcomes
// is cut off rather than allowed to stall the cluster's buses).
func (c *Client) WatchAll() (<-chan sodee.JobEvent, func(), error) {
	c.mu.Lock()
	c.watchGen++
	w := &clientWatch{
		gen:     c.watchGen,
		ch:      make(chan sodee.JobEvent, 512),
		pending: make(map[uint64]sodee.JobEvent),
		all:     true,
	}
	c.watches[w.gen] = w
	c.mu.Unlock()

	req := wire.NewWriter(12)
	req.Byte(opWatchAll)
	req.Uvarint(w.gen)
	if _, err := c.call(req.Bytes()); err != nil {
		c.endWatch(w.gen)
		return nil, nil, err
	}
	cancel := func() {
		if c.endWatch(w.gen) {
			uw := wire.NewWriter(12)
			uw.Byte(opUnwatch)
			uw.Uvarint(w.gen)
			c.call(uw.Bytes()) //nolint:errcheck
		}
	}
	return w.ch, cancel, nil
}

// endWatch closes and forgets one watch; reports whether it was live.
func (c *Client) endWatch(gen uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.watches[gen]
	if w == nil {
		return false
	}
	delete(c.watches, gen)
	if !w.closed {
		w.closed = true
		close(w.ch)
	}
	return true
}

func (c *Client) endAllWatches() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for gen, w := range c.watches {
		delete(c.watches, gen)
		if !w.closed {
			w.closed = true
			close(w.ch)
		}
	}
}

// handleControl receives the daemon's one-way stream frames.
func (c *Client) handleControl(from int, payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("daemon client: empty control frame")
	}
	switch payload[0] {
	case opEvent:
		r := wire.NewReader(payload[1:])
		gen := r.Uvarint()
		streamSeq := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		ev, err := sodee.DecodeJobEvent(payload[1+r.Pos():])
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		w := c.watches[gen]
		if w != nil && !w.closed {
			w.pending[streamSeq] = ev
			for {
				nextEv, ok := w.pending[w.next]
				if !ok {
					break
				}
				delete(w.pending, w.next)
				w.next++
				select {
				case w.ch <- nextEv:
				default:
					// Slow consumer: drop — except a terminal event, which
					// carries the job's outcome; evict the oldest queued
					// event to make room for it.
					if nextEv.Terminal() {
						select {
						case <-w.ch:
						default:
						}
						select {
						case w.ch <- nextEv:
						default:
						}
					}
				}
				if nextEv.Terminal() && !w.all {
					w.closed = true
					close(w.ch)
					delete(c.watches, gen)
					break
				}
			}
		}
		c.mu.Unlock()
		return nil, nil
	case opEventEnd:
		r := wire.NewReader(payload[1:])
		gen := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		c.endWatch(gen)
		return nil, nil
	default:
		return nil, fmt.Errorf("daemon client: unexpected control op %d", payload[0])
	}
}

// Run submits a job and waits for its result.
func (c *Client) Run(method string, timeout time.Duration, args ...int64) (int64, error) {
	id, err := c.Submit(method, args...)
	if err != nil {
		return 0, err
	}
	res, done, errMsg, err := c.Wait(id, timeout)
	if err != nil {
		return 0, err
	}
	if !done {
		return 0, fmt.Errorf("job %d still running after %v", id, timeout)
	}
	if errMsg != "" {
		return 0, fmt.Errorf("job %d failed: %s", id, errMsg)
	}
	return res, nil
}

// Stats queries the daemon's balancer counters, including the
// per-direction migration split (pushed / stolen / rebalanced /
// chained) and the node's steal counters.
func (c *Client) Stats() (sodee.BalanceStats, sodee.StealStats, error) {
	w := wire.NewWriter(1)
	w.Byte(opStats)
	reply, err := c.call(w.Bytes())
	if err != nil {
		return sodee.BalanceStats{}, sodee.StealStats{}, err
	}
	r := wire.NewReader(reply)
	st := sodee.BalanceStats{
		Ticks:            int(r.Uvarint()),
		Decisions:        int(r.Uvarint()),
		Migrations:       int(r.Uvarint()),
		FailedMigrations: int(r.Uvarint()),
		Pushed:           int(r.Uvarint()),
		Stolen:           int(r.Uvarint()),
		Rebalanced:       int(r.Uvarint()),
		Chained:          int(r.Uvarint()),
		ChainSegments:    int(r.Uvarint()),
		MigrationsTo:     make(map[int]int),
	}
	ss := sodee.StealStats{
		RequestsSent:    int(r.Uvarint()),
		Won:             int(r.Uvarint()),
		RequestsServed:  int(r.Uvarint()),
		Granted:         int(r.Uvarint()),
		Denied:          int(r.Uvarint()),
		FailedTransfers: int(r.Uvarint()),
	}
	n := int(r.Uvarint())
	for i := 0; i < n && r.Err() == nil; i++ {
		dest := int(r.Varint())
		st.MigrationsTo[dest] = int(r.Uvarint())
	}
	return st, ss, r.Err()
}

// Metrics snapshots the daemon's metrics registry (counters, gauges,
// histograms). Snapshots from several daemons merge into a cluster view
// with Snapshot.Merge.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	w := wire.NewWriter(1)
	w.Byte(opMetrics)
	reply, err := c.call(w.Bytes())
	if err != nil {
		return nil, err
	}
	return obs.DecodeSnapshot(reply)
}

// Trace fetches a job's span timeline — capture/transfer/restore phases
// per migration hop, chain plants and forwards — causally ordered at the
// job's origin node. Ask the daemon that started the job: spans ride
// home to the origin, other nodes answer "no trace".
func (c *Client) Trace(job uint64) ([]obs.Span, error) {
	w := wire.NewWriter(12)
	w.Byte(opTrace)
	w.Uvarint(job)
	reply, err := c.call(w.Bytes())
	if err != nil {
		return nil, err
	}
	return obs.DecodeSpans(reply)
}

// LoadInfo is a daemon's view of cluster load.
type LoadInfo struct {
	Local       policy.Signals
	Peers       []policy.Signals
	WireLatency map[int]time.Duration // calibrated per-destination EWMA
}

// Load queries the daemon's local and gossiped load signals.
func (c *Client) Load() (LoadInfo, error) {
	w := wire.NewWriter(1)
	w.Byte(opLoad)
	reply, err := c.call(w.Bytes())
	if err != nil {
		return LoadInfo{}, err
	}
	r := wire.NewReader(reply)
	var info LoadInfo
	local, err := sodee.DecodeSignals(r.Blob())
	if err != nil {
		return LoadInfo{}, err
	}
	info.Local = local
	n := int(r.Uvarint())
	for i := 0; i < n && r.Err() == nil; i++ {
		p, perr := sodee.DecodeSignals(r.Blob())
		if perr != nil {
			return LoadInfo{}, perr
		}
		info.Peers = append(info.Peers, p)
	}
	info.WireLatency = make(map[int]time.Duration)
	for i, nl := 0, int(r.Uvarint()); i < nl && r.Err() == nil; i++ {
		dest := int(r.Varint())
		info.WireLatency[dest] = time.Duration(r.Uvarint())
	}
	return info, r.Err()
}
