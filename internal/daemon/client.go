package daemon

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/membership"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/sodee"
	"repro/internal/wire"
)

// Client is a control-plane connection to one daemon — what sodctl and
// the integration tests use to drive a cluster from outside. Clients use
// negative node ids so they can never collide with (or be mistaken for)
// cluster members; a daemon answers their RPCs but never gossips to
// them.
type Client struct {
	tr   *netsim.TCPTransport
	peer int
}

// ctlSeq disambiguates several clients inside one process.
var ctlSeq atomic.Int64

// Dial connects a control client to the daemon at addr.
func Dial(addr string) (*Client, error) {
	id := -(int(ctlSeq.Add(1))*1_000_000 + os.Getpid()%1_000_000 + 1)
	tr, err := netsim.NewTCPTransport(id, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	peer, err := tr.Connect(addr)
	if err != nil {
		tr.Close() //nolint:errcheck
		return nil, err
	}
	return &Client{tr: tr, peer: peer}, nil
}

// Close releases the connection.
func (c *Client) Close() { c.tr.Close() } //nolint:errcheck

// Peer returns the daemon's node id.
func (c *Client) Peer() int { return c.peer }

func (c *Client) call(payload []byte) ([]byte, error) {
	return c.tr.Call(c.peer, netsim.KindControl, payload)
}

// MemberInfo is one row of a daemon's membership view.
type MemberInfo struct {
	Node       int
	State      membership.State
	SinceHeard time.Duration
	Addr       string
}

// Members queries the daemon's membership view; self is the daemon's
// own id.
func (c *Client) Members() (self int, members []MemberInfo, err error) {
	w := wire.NewWriter(1)
	w.Byte(opMembers)
	reply, err := c.call(w.Bytes())
	if err != nil {
		return 0, nil, err
	}
	r := wire.NewReader(reply)
	self = int(r.Varint())
	n := int(r.Uvarint())
	for i := 0; i < n && r.Err() == nil; i++ {
		members = append(members, MemberInfo{
			Node:       int(r.Varint()),
			State:      membership.State(r.Byte()),
			SinceHeard: time.Duration(r.Uvarint()) * time.Millisecond,
			Addr:       string(r.Blob()),
		})
	}
	return self, members, r.Err()
}

// Submit starts a job on the daemon and returns its id.
func (c *Client) Submit(method string, args ...int64) (uint64, error) {
	w := wire.NewWriter(64)
	w.Byte(opSubmit)
	w.Blob([]byte(method))
	w.Uvarint(uint64(len(args)))
	for _, a := range args {
		w.Varint(a)
	}
	reply, err := c.call(w.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(reply)
	id := r.Uvarint()
	return id, r.Err()
}

// Wait blocks (up to timeout) for a submitted job's result. done is
// false on timeout; a non-empty errMsg is the job's failure.
func (c *Client) Wait(job uint64, timeout time.Duration) (result int64, done bool, errMsg string, err error) {
	w := wire.NewWriter(24)
	w.Byte(opWait)
	w.Uvarint(job)
	w.Uvarint(uint64(timeout / time.Millisecond))
	reply, err := c.call(w.Bytes())
	if err != nil {
		return 0, false, "", err
	}
	r := wire.NewReader(reply)
	done = r.Byte() != 0
	result = r.Varint()
	errMsg = string(r.Blob())
	return result, done, errMsg, r.Err()
}

// Run submits a job and waits for its result.
func (c *Client) Run(method string, timeout time.Duration, args ...int64) (int64, error) {
	id, err := c.Submit(method, args...)
	if err != nil {
		return 0, err
	}
	res, done, errMsg, err := c.Wait(id, timeout)
	if err != nil {
		return 0, err
	}
	if !done {
		return 0, fmt.Errorf("job %d still running after %v", id, timeout)
	}
	if errMsg != "" {
		return 0, fmt.Errorf("job %d failed: %s", id, errMsg)
	}
	return res, nil
}

// Stats queries the daemon's balancer counters, including the
// per-direction migration split (pushed / stolen / rebalanced) and the
// node's steal counters.
func (c *Client) Stats() (sodee.BalanceStats, sodee.StealStats, error) {
	w := wire.NewWriter(1)
	w.Byte(opStats)
	reply, err := c.call(w.Bytes())
	if err != nil {
		return sodee.BalanceStats{}, sodee.StealStats{}, err
	}
	r := wire.NewReader(reply)
	st := sodee.BalanceStats{
		Ticks:            int(r.Uvarint()),
		Decisions:        int(r.Uvarint()),
		Migrations:       int(r.Uvarint()),
		FailedMigrations: int(r.Uvarint()),
		Pushed:           int(r.Uvarint()),
		Stolen:           int(r.Uvarint()),
		Rebalanced:       int(r.Uvarint()),
		MigrationsTo:     make(map[int]int),
	}
	ss := sodee.StealStats{
		RequestsSent:    int(r.Uvarint()),
		Won:             int(r.Uvarint()),
		RequestsServed:  int(r.Uvarint()),
		Granted:         int(r.Uvarint()),
		Denied:          int(r.Uvarint()),
		FailedTransfers: int(r.Uvarint()),
	}
	n := int(r.Uvarint())
	for i := 0; i < n && r.Err() == nil; i++ {
		dest := int(r.Varint())
		st.MigrationsTo[dest] = int(r.Uvarint())
	}
	return st, ss, r.Err()
}

// LoadInfo is a daemon's view of cluster load.
type LoadInfo struct {
	Local       policy.Signals
	Peers       []policy.Signals
	WireLatency map[int]time.Duration // calibrated per-destination EWMA
}

// Load queries the daemon's local and gossiped load signals.
func (c *Client) Load() (LoadInfo, error) {
	w := wire.NewWriter(1)
	w.Byte(opLoad)
	reply, err := c.call(w.Bytes())
	if err != nil {
		return LoadInfo{}, err
	}
	r := wire.NewReader(reply)
	var info LoadInfo
	local, err := sodee.DecodeSignals(r.Blob())
	if err != nil {
		return LoadInfo{}, err
	}
	info.Local = local
	n := int(r.Uvarint())
	for i := 0; i < n && r.Err() == nil; i++ {
		p, perr := sodee.DecodeSignals(r.Blob())
		if perr != nil {
			return LoadInfo{}, perr
		}
		info.Peers = append(info.Peers, p)
	}
	info.WireLatency = make(map[int]time.Duration)
	for i, nl := 0, int(r.Uvarint()); i < nl && r.Err() == nil; i++ {
		dest := int(r.Varint())
		info.WireLatency[dest] = time.Duration(r.Uvarint())
	}
	return info, r.Err()
}
