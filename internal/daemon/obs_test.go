package daemon

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObsEndpointServesMetricsAndPprof boots a daemon with the -obs
// listener, drives a little load, and checks the HTTP surface: /metrics
// must serve well-formed, non-empty Prometheus text and the pprof index
// must answer — the contract CI's cluster smoke curls for.
func TestObsEndpointServesMetricsAndPprof(t *testing.T) {
	d1, _, _ := bootTrio(t)
	waitMembers(t, d1, 2, 3)
	addr, err := d1.StartObs("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	job, err := d1.Submit("main", 7, testIters)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d, want 200", resp.StatusCode)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("/metrics content type %q, want text/plain", resp.Header.Get("Content-Type"))
	}
	text := string(body)
	if !strings.Contains(text, "# TYPE sod_events_published_total counter") {
		t.Fatalf("/metrics missing TYPE line for sod_events_published_total:\n%s", text)
	}
	if !strings.Contains(text, "sod_events_published_total ") {
		t.Fatalf("/metrics missing sod_events_published_total sample:\n%s", text)
	}
	// Every sample line must parse as "name value" (or a # comment) —
	// the malformed-output check the smoke relies on.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}

	pp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close() //nolint:errcheck
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d, want 200", pp.StatusCode)
	}

	// A second StartObs must refuse rather than leak a listener.
	if _, err := d1.StartObs("127.0.0.1:0"); err == nil {
		t.Fatal("second StartObs succeeded; want an error")
	}
}

// TestTraceTimelineAcrossDaemons is the observability acceptance run: a
// burst lands on the weak node of a real 3-daemon TCP cluster, the
// balancer spills it, and the origin daemon's trace store must hold a
// complete multi-hop timeline for a migrated job — exactly one root
// span, no orphaned parents, and capture → transfer → restore under
// every migration hop, in causal order. opMetrics must agree that
// migrations happened.
func TestTraceTimelineAcrossDaemons(t *testing.T) {
	d1, _, _ := bootTrio(t)
	waitMembers(t, d1, 2, 3)

	cl, err := Dial(d1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	const njobs = 5
	ids := make([]uint64, njobs)
	for i := range ids {
		id, err := cl.Submit("main", int64(20+i), testIters)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if _, done, errMsg, err := cl.Wait(id, testTimeout); err != nil || !done || errMsg != "" {
			t.Fatalf("job %d: done=%v errMsg=%q err=%v", id, done, errMsg, err)
		}
	}

	// Spans from remote hops ride home asynchronously; poll for a job
	// whose timeline shows at least one complete hop.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var best []obs.Span
		for _, id := range ids {
			spans, err := cl.Trace(id)
			if err != nil {
				t.Fatalf("trace job %d: %v", id, err)
			}
			if hasCompleteHop(t, id, spans) {
				best = spans
				break
			}
		}
		if best != nil {
			// The rendering (what sodctl trace prints) must show the hop.
			text := obs.RenderTrace(best)
			for _, want := range []string{"job", "migrate", "capture", "transfer", "restore", "node 1 -> "} {
				if !strings.Contains(text, want) {
					t.Fatalf("rendered trace missing %q:\n%s", want, text)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no job's trace ever showed a complete migration hop")
		}
		time.Sleep(10 * time.Millisecond)
	}

	snap, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	var migs int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "sod_migrations_total{") {
			migs += v
		}
	}
	if migs == 0 {
		t.Fatal("opMetrics reports zero migrations after a spilled burst")
	}
}

// hasCompleteHop validates one job's timeline invariants (fatal on a
// structural violation) and reports whether it contains at least one
// migrate span with all three phase children.
func hasCompleteHop(t *testing.T, job uint64, spans []obs.Span) bool {
	t.Helper()
	byID := make(map[uint64]obs.Span, len(spans))
	roots := 0
	for _, s := range spans {
		byID[s.ID] = s
		if s.Parent == 0 {
			roots++
			if s.Name != "job" {
				t.Fatalf("job %d root span named %q, want \"job\"", job, s.Name)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("job %d has %d root spans, want exactly 1: %+v", job, roots, spans)
	}
	phases := make(map[uint64]map[string]bool)
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		parent, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("job %d span %q (id %d) orphaned: parent %d not in trace", job, s.Name, s.ID, s.Parent)
		}
		if parent.Name == "migrate" {
			if phases[s.Parent] == nil {
				phases[s.Parent] = make(map[string]bool)
			}
			phases[s.Parent][s.Name] = true
		}
	}
	for _, ph := range phases {
		if ph["capture"] && ph["transfer"] && ph["restore"] {
			return true
		}
	}
	return false
}
