package daemon

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// StartObs opens the opt-in observability HTTP listener (sodd -obs):
// GET /metrics serves the node's registry in Prometheus text exposition
// format, and the standard net/http/pprof handlers hang under
// /debug/pprof/ for live profiling. Returns the bound address (addr may
// use port 0). The listener lives until Stop.
func (d *Daemon) StartObs(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, d.node.Obs.Snapshot().RenderPrometheus()) //nolint:errcheck // client hangup
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("daemon %d obs listener: %w", d.cfg.ID, err)
	}
	srv := &http.Server{Handler: mux}
	d.mu.Lock()
	if d.obsSrv != nil {
		d.mu.Unlock()
		ln.Close() //nolint:errcheck
		return "", fmt.Errorf("daemon %d: obs listener already running", d.cfg.ID)
	}
	d.obsSrv = srv
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Stop
	}()
	d.logf("sodd[%d]: obs endpoint on http://%s/metrics", d.cfg.ID, ln.Addr())
	return ln.Addr().String(), nil
}
