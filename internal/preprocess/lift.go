// Package preprocess implements the class preprocessor of §III: the
// offline, automatic bytecode transformation pass that makes a program
// migratable and distribution-aware. For each method it
//
//  1. *lifts* the bytecode into per-statement expression trees,
//  2. *flattens* nested calls into temporaries so that every statement
//     boundary has an empty operand stack and at most one call whose
//     result is immediately stored — producing the migration-safe points
//     (MSPs) of §III.B.1 and making statements safely re-executable,
//  3. injects *object fault handlers* (Fig 5 B2) or *status checks*
//     (Fig 5 B1) for remote-object detection, and
//  4. injects the *restoration handler* (Fig 4) that reloads locals from a
//     CapturedState and jumps to the saved pc via a table switch.
//
// Methods the lifter cannot analyze (irregular stack discipline) are
// copied unchanged and simply carry no MSPs — they never migrate, the same
// graceful degradation a production system would need.
package preprocess

import (
	"fmt"

	"repro/internal/bytecode"
)

// expr is a node of a lifted statement tree. op/a/b mirror the original
// instruction; kids are operands in evaluation order.
type expr struct {
	op        bytecode.Op
	a, b      int32
	kids      []*expr
	synthetic bool // value is already on the runtime stack (handler entry)
}

// stmt is one maximal instruction run between empty-operand-stack points.
type stmt struct {
	origPC     int32 // pc of the statement's first instruction in the input
	root       *expr
	entryDepth int // 1 for the pop/store consuming a handler's exception
}

// liftError explains why a method cannot be lifted.
type liftError struct {
	pc  int32
	msg string
}

func (e *liftError) Error() string { return fmt.Sprintf("pc %d: %s", e.pc, e.msg) }

// lift decodes m's body into statements. It fails (method stays as-is)
// when the code uses stack idioms outside the statement discipline —
// Dup/Swap, non-empty stacks at branch targets, multi-value carries.
func lift(p *bytecode.Program, m *bytecode.Method) ([]*stmt, error) {
	code := m.Code
	n := int32(len(code))

	// Branch targets and handler entries must be statement starts.
	targets := make(map[int32]bool)
	handlers := make(map[int32]bool)
	for _, ins := range code {
		if ins.Op.IsBranch() {
			targets[ins.A] = true
		}
	}
	for _, ins := range code {
		if ins.Op == bytecode.OpTSwitch {
			tbl := &m.Switches[ins.A]
			targets[tbl.Default] = true
			for _, t := range tbl.Targets {
				targets[t] = true
			}
		}
	}
	for _, ex := range m.Except {
		handlers[ex.Handler] = true
	}

	var stmts []*stmt
	var stack []*expr
	stmtStart := int32(0)
	entryDepth := 0

	pop := func(pc int32, k int) ([]*expr, error) {
		if len(stack) < k {
			return nil, &liftError{pc, fmt.Sprintf("%s needs %d operands, stack has %d", code[pc].Op, k, len(stack))}
		}
		kids := make([]*expr, k)
		copy(kids, stack[len(stack)-k:])
		stack = stack[:len(stack)-k]
		return kids, nil
	}
	closeStmt := func(pc int32, root *expr) {
		stmts = append(stmts, &stmt{origPC: stmtStart, root: root, entryDepth: entryDepth})
		stmtStart = pc + 1
		entryDepth = 0
	}

	for pc := int32(0); pc < n; pc++ {
		if pc == stmtStart {
			if handlers[pc] {
				if len(stack) != 0 {
					return nil, &liftError{pc, "handler entry with pending statement"}
				}
				stack = append(stack, &expr{synthetic: true})
				entryDepth = 1
			}
		} else if targets[pc] || handlers[pc] {
			return nil, &liftError{pc, "branch target inside a statement"}
		}

		ins := code[pc]
		switch ins.Op {
		// Leaves.
		case bytecode.OpConst, bytecode.OpIConst, bytecode.OpNull, bytecode.OpSConst,
			bytecode.OpLoad, bytecode.OpGetS, bytecode.OpNew:
			stack = append(stack, &expr{op: ins.Op, a: ins.A, b: ins.B})

		// Unary.
		case bytecode.OpNeg, bytecode.OpNot, bytecode.OpI2F, bytecode.OpF2I,
			bytecode.OpArrLen, bytecode.OpInstOf, bytecode.OpCheckCast, bytecode.OpGetF:
			kids, err := pop(pc, 1)
			if err != nil {
				return nil, err
			}
			stack = append(stack, &expr{op: ins.Op, a: ins.A, b: ins.B, kids: kids})

		// Binary.
		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod,
			bytecode.OpAnd, bytecode.OpOr, bytecode.OpXor, bytecode.OpShl, bytecode.OpShr,
			bytecode.OpEq, bytecode.OpNe, bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe,
			bytecode.OpALoad:
			kids, err := pop(pc, 2)
			if err != nil {
				return nil, err
			}
			stack = append(stack, &expr{op: ins.Op, a: ins.A, b: ins.B, kids: kids})

		// Array allocation (length operand).
		case bytecode.OpNewArr:
			kids, err := pop(pc, 1)
			if err != nil {
				return nil, err
			}
			stack = append(stack, &expr{op: ins.Op, a: ins.A, kids: kids})

		// Calls.
		case bytecode.OpCall, bytecode.OpCallV, bytecode.OpCallNat:
			nargs := int(ins.B)
			kids, err := pop(pc, nargs)
			if err != nil {
				return nil, err
			}
			node := &expr{op: ins.Op, a: ins.A, b: ins.B, kids: kids}
			if callReturns(p, ins) {
				stack = append(stack, node)
			} else {
				if len(stack) != 0 {
					return nil, &liftError{pc, "void call with residual operands"}
				}
				closeStmt(pc, node)
			}

		// Statement roots.
		case bytecode.OpStore, bytecode.OpPop, bytecode.OpRetV, bytecode.OpThrow,
			bytecode.OpPutS, bytecode.OpJz, bytecode.OpJnz:
			kids, err := pop(pc, 1)
			if err != nil {
				return nil, err
			}
			if len(stack) != 0 {
				return nil, &liftError{pc, fmt.Sprintf("%s leaves %d residual operands", ins.Op, len(stack))}
			}
			closeStmt(pc, &expr{op: ins.Op, a: ins.A, b: ins.B, kids: kids})
		case bytecode.OpPutF:
			kids, err := pop(pc, 2)
			if err != nil {
				return nil, err
			}
			if len(stack) != 0 {
				return nil, &liftError{pc, "putf leaves residual operands"}
			}
			closeStmt(pc, &expr{op: ins.Op, a: ins.A, kids: kids})
		case bytecode.OpAStore:
			kids, err := pop(pc, 3)
			if err != nil {
				return nil, err
			}
			if len(stack) != 0 {
				return nil, &liftError{pc, "astore leaves residual operands"}
			}
			closeStmt(pc, &expr{op: ins.Op, kids: kids})
		case bytecode.OpTSwitch:
			kids, err := pop(pc, 1)
			if err != nil {
				return nil, err
			}
			if len(stack) != 0 {
				return nil, &liftError{pc, "tswitch leaves residual operands"}
			}
			closeStmt(pc, &expr{op: ins.Op, a: ins.A, kids: kids})
		case bytecode.OpJmp, bytecode.OpRet, bytecode.OpNop:
			if len(stack) != 0 {
				return nil, &liftError{pc, fmt.Sprintf("%s with residual operands", ins.Op)}
			}
			if ins.Op == bytecode.OpNop {
				// Fold nops into the following statement.
				continue
			}
			closeStmt(pc, &expr{op: ins.Op, a: ins.A})

		// Idioms outside the statement discipline.
		case bytecode.OpDup, bytecode.OpSwap, bytecode.OpGetStatus:
			return nil, &liftError{pc, fmt.Sprintf("%s is not liftable", ins.Op)}
		default:
			return nil, &liftError{pc, fmt.Sprintf("unsupported opcode %s", ins.Op)}
		}
	}
	if len(stack) != 0 {
		return nil, &liftError{n, "operand stack not empty at end of code"}
	}
	return stmts, nil
}

func callReturns(p *bytecode.Program, ins bytecode.Instr) bool {
	switch ins.Op {
	case bytecode.OpCall:
		return p.Methods[ins.A].ReturnsValue
	case bytecode.OpCallV:
		for _, c := range p.Classes {
			if mid, ok := c.Methods[p.VNames[ins.A]]; ok {
				return p.Methods[mid].ReturnsValue
			}
		}
		return false
	case bytecode.OpCallNat:
		return p.Natives[ins.A].ReturnsValue
	}
	return false
}

// --- deref-site analysis ---

// siteKind discriminates the patchable location classes of §III.C.
type siteKind int

const (
	siteLocal siteKind = iota
	siteField
	siteStatic
	siteElem
)

// site is one dereferenced location within a statement: what the injected
// fault handler (or hoisted status check) must bring in and patch.
type site struct {
	kind     siteKind
	slot     int32 // siteLocal
	fieldIdx int32 // siteField
	clsID    int32 // siteStatic
	statIdx  int32 // siteStatic
	base     *expr // siteField: object expr; siteElem: array expr
	idx      *expr // siteElem
}

// locate maps a ref-producing expression to its patchable location.
// CheckCast wrappers are transparent. Expressions with no stable location
// (freshly allocated objects, call results before spilling) return !ok —
// they are local by construction and never need patching.
func locate(e *expr) (site, bool) {
	for e.op == bytecode.OpCheckCast {
		e = e.kids[0]
	}
	switch e.op {
	case bytecode.OpLoad:
		return site{kind: siteLocal, slot: e.a}, true
	case bytecode.OpGetF:
		return site{kind: siteField, fieldIdx: e.a, base: e.kids[0]}, true
	case bytecode.OpGetS:
		return site{kind: siteStatic, clsID: e.a, statIdx: e.b}, true
	case bytecode.OpALoad:
		return site{kind: siteElem, base: e.kids[0], idx: e.kids[1]}, true
	}
	return site{}, false
}

// scanSites collects the deref sites of a statement tree in evaluation
// (post-) order: a dereference happens after its operands are evaluated,
// so patching in this order guarantees each patch's own base is already
// local when it runs.
func scanSites(root *expr) []site {
	var sites []site
	seen := func(k *expr) {
		if s, ok := locate(k); ok {
			sites = append(sites, s)
		}
	}
	var walk func(e *expr)
	walk = func(e *expr) {
		for _, k := range e.kids {
			walk(k)
		}
		switch e.op {
		case bytecode.OpGetF, bytecode.OpArrLen, bytecode.OpInstOf,
			bytecode.OpCheckCast, bytecode.OpThrow,
			bytecode.OpALoad, bytecode.OpPutF, bytecode.OpAStore:
			seen(e.kids[0]) // the object/array being dereferenced
		case bytecode.OpCallV:
			seen(e.kids[0]) // receiver
		case bytecode.OpCallNat:
			// Natives dereference their ref arguments internally (JNI-style),
			// so every locatable argument is a patchable site. Non-ref
			// arguments patch through bringObj as identity no-ops.
			for _, k := range e.kids {
				seen(k)
			}
		}
	}
	walk(root)
	return sites
}

// pure reports whether re-evaluating e is side-effect free (loads, consts,
// field/array/static reads, arithmetic). Calls and allocations are impure.
func pure(e *expr) bool {
	switch e.op {
	case bytecode.OpCall, bytecode.OpCallV, bytecode.OpCallNat, bytecode.OpNew, bytecode.OpNewArr:
		return false
	}
	if e.synthetic {
		return false
	}
	for _, k := range e.kids {
		if !pure(k) {
			return false
		}
	}
	return true
}
