package preprocess

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
)

// Names of the helper natives the preprocessor wires calls to. The SOD
// runtime binds them: bringObj is the ObjMan.bringObj of §III.C; the rst_*
// pair implements the CapturedState.read<Type> unwrapping of Fig 4.
const (
	NatBringObj = "sod_bringObj"  // (ref) -> local ref; raises app NPE on true null
	NatRstLocal = "sod_rst_local" // (slot) -> captured local value
	NatRstPC    = "sod_rst_pc"    // () -> captured pc
)

// emitter builds the transformed method body.
type emitter struct {
	p    *bytecode.Program // output program (extended native table)
	m    *bytecode.Method  // original method being transformed
	opts Options
	// callRetProg resolves call return-ness: method/vname/native tables of
	// the *input* program (method ids are stable across the transform).
	callRetProg *bytecode.Program
	// bodyEnd is the emitted pc one past the flattened body (set before
	// handler emission); the restoration range covers [0, bodyEnd).
	bodyEnd int32

	natBring int32
	natRstL  int32
	natRstPC int32

	code     []bytecode.Instr
	lines    []bytecode.LineEntry
	msps     []int32
	faultEx  []bytecode.ExRange
	userEx   []bytecode.ExRange
	switches []bytecode.SwitchTable
	nextLine int32

	nlocals  int // grows as temps are allocated
	tmpFloor int // first temp slot (original NLocals)

	// jump fixups: code[atPC].A (or switch entries) refer to ORIGINAL pcs
	// until remap runs.
	jumpFixes   []int32 // pcs of branch instructions to remap
	switchFixes []int32 // indexes into switches to remap

	// pcMap maps original statement-start pcs to emitted pcs.
	pcMap map[int32]int32

	// pending fault handlers: one per statement with deref sites.
	pending []pendingHandler
}

type pendingHandler struct {
	from, to int32 // emitted body range of the statement
	retry    int32 // emitted statement start
	sites    []site
}

func newEmitter(p *bytecode.Program, m *bytecode.Method, opts Options) *emitter {
	return &emitter{
		p: p, m: m, opts: opts,
		natBring: p.NativeByName(NatBringObj),
		natRstL:  p.NativeByName(NatRstLocal),
		natRstPC: p.NativeByName(NatRstPC),
		nlocals:  m.NLocals,
		tmpFloor: m.NLocals,
		pcMap:    make(map[int32]int32),
	}
}

func (em *emitter) pc() int32 { return int32(len(em.code)) }

func (em *emitter) raw(op bytecode.Op, a, b int32) {
	em.code = append(em.code, bytecode.Instr{Op: op, A: a, B: b})
}

// rawJump emits a branch whose A operand is an ORIGINAL pc, recorded for
// remapping once the whole body is emitted.
func (em *emitter) rawJump(op bytecode.Op, origTarget int32) {
	em.jumpFixes = append(em.jumpFixes, em.pc())
	em.raw(op, origTarget, 0)
}

func (em *emitter) newTemp() int32 {
	s := em.nlocals
	em.nlocals++
	return int32(s)
}

// beginStmt opens a statement at the emitted pc: line entry, MSP (when the
// operand stack is empty on entry) and the orig→new pc mapping.
func (em *emitter) beginStmt(origPC int32, depth int) int32 {
	start := em.pc()
	em.nextLine++
	em.lines = append(em.lines, bytecode.LineEntry{PC: start, Line: em.nextLine})
	if depth == 0 {
		em.msps = append(em.msps, start)
	}
	if _, dup := em.pcMap[origPC]; !dup {
		em.pcMap[origPC] = start
	}
	return start
}

// emitStmt generates one lifted statement: spills nested calls, optionally
// hoists status checks, emits the body, and registers the fault-handler
// range for faulting mode.
func (em *emitter) emitStmt(s *stmt) error {
	root := s.root
	// Handler-entry statements (pop/store of the exception already on the
	// runtime stack) are emitted verbatim: they start at depth 1, are not
	// MSPs and cannot fault.
	if s.entryDepth == 1 {
		em.beginStmt(s.origPC, 1)
		switch root.op {
		case bytecode.OpStore, bytecode.OpPop:
			em.raw(root.op, root.a, 0)
			return nil
		default:
			return fmt.Errorf("handler entry must be store/pop, got %s", root.op)
		}
	}

	// Spill nested calls into temps, each its own statement. The root's
	// own call (if it is one, or feeds a deref-free consumer) stays inline.
	tmpMark := em.nlocals
	if err := em.spillCalls(root, s.origPC, true); err != nil {
		return err
	}
	em.nlocals = max(em.nlocals, tmpMark) // temps persist; counter monotonic

	sites := scanSites(root)
	start := em.beginStmt(s.origPC, 0)

	if err := em.emitRoot(root); err != nil {
		return err
	}

	if em.opts.Mode == ModeFaulting && len(sites) > 0 {
		em.pending = append(em.pending, pendingHandler{
			from: start, to: em.pc(), retry: start, sites: sites,
		})
	}
	return nil
}

// spillCalls walks the tree and replaces every non-inlineable call node
// with a temp-load leaf, emitting "tmp = call(...)" sub-statements first.
// isRoot marks the statement root, whose own call kid may stay inline when
// no dereference follows the call (Store/Pop/RetV/PutS/Jz/Jnz roots and
// call-statement roots).
func (em *emitter) spillCalls(e *expr, origPC int32, isRoot bool) error {
	// Which kid may keep its call inline: single-operand roots whose
	// consuming op performs no dereference after the call returns. PutF and
	// AStore roots dereference their base *after* the value is computed, so
	// a call there must be spilled or a fault would re-run it.
	inlineKid := -1
	if isRoot {
		switch e.op {
		case bytecode.OpStore, bytecode.OpPop, bytecode.OpRetV, bytecode.OpPutS,
			bytecode.OpJz, bytecode.OpJnz, bytecode.OpTSwitch:
			inlineKid = 0
		}
	}
	for i, k := range e.kids {
		if err := em.spillCalls(k, origPC, false); err != nil {
			return err
		}
		if isCall(k) && i != inlineKid {
			// Spill: tmp = <call>
			tmp := em.newTemp()
			em.beginStmt(origPC, 0)
			kSites := scanSites(k)
			from := em.pc()
			em.emitExpr(k)
			em.raw(bytecode.OpStore, tmp, 0)
			if em.opts.Mode == ModeFaulting && len(kSites) > 0 {
				em.pending = append(em.pending, pendingHandler{from: from, to: em.pc(), retry: from, sites: kSites})
			}
			e.kids[i] = &expr{op: bytecode.OpLoad, a: tmp}
		}
	}
	return nil
}

func isCall(e *expr) bool {
	switch e.op {
	case bytecode.OpCall, bytecode.OpCallV, bytecode.OpCallNat:
		return true
	}
	return false
}

// Wait-free helper: emit a conditional jump with unknown target; returns
// the pc to patch.
func (em *emitter) emitJumpPlaceholder(op bytecode.Op) int32 {
	pc := em.pc()
	em.raw(op, -1, 0)
	return pc
}

func (em *emitter) patchJump(atPC, target int32) { em.code[atPC].A = target }

// check injects the Fig 5 B1 status test on the reference currently on
// top of the operand stack (status-check mode only): dup it, read the
// status word, branch over a bringObj call when valid — the four extra
// instructions per access the paper measures. On the invalid path bringObj
// replaces the stack top with the fetched local reference.
func (em *emitter) check() {
	if em.opts.Mode != ModeStatusCheck {
		return
	}
	em.raw(bytecode.OpDup, 0, 0)
	em.raw(bytecode.OpGetStatus, 0, 0)
	skip := em.emitJumpPlaceholder(bytecode.OpJnz)
	em.raw(bytecode.OpCallNat, em.natBring, 1)
	em.patchJump(skip, em.pc())
}

// staticCheck injects the class-status test before a static access in
// status-check mode: read the static, test its status word, bring the
// object in and write it back when invalid. For primitive statics the
// status test always passes, but the extra load + test + branch cost is
// paid — the source of Table V's large static-write slowdown.
func (em *emitter) staticCheck(cls, idx int32) {
	if em.opts.Mode != ModeStatusCheck {
		return
	}
	em.raw(bytecode.OpGetS, cls, idx)
	em.raw(bytecode.OpGetStatus, 0, 0)
	skip := em.emitJumpPlaceholder(bytecode.OpJnz)
	em.raw(bytecode.OpGetS, cls, idx)
	em.raw(bytecode.OpCallNat, em.natBring, 1)
	em.raw(bytecode.OpPutS, cls, idx)
	em.patchJump(skip, em.pc())
}

// emitRoot generates a statement root.
func (em *emitter) emitRoot(e *expr) error {
	switch e.op {
	case bytecode.OpStore, bytecode.OpPop, bytecode.OpRetV:
		em.emitExpr(e.kids[0])
		em.raw(e.op, e.a, e.b)
	case bytecode.OpPutS:
		em.staticCheck(e.a, e.b)
		em.emitExpr(e.kids[0])
		em.raw(e.op, e.a, e.b)
	case bytecode.OpThrow:
		em.emitExpr(e.kids[0])
		em.check()
		em.raw(e.op, e.a, e.b)
	case bytecode.OpPutF:
		em.emitExpr(e.kids[0])
		em.check()
		em.emitExpr(e.kids[1])
		em.raw(e.op, e.a, 0)
	case bytecode.OpAStore:
		em.emitExpr(e.kids[0])
		em.check()
		em.emitExpr(e.kids[1])
		em.emitExpr(e.kids[2])
		em.raw(e.op, 0, 0)
	case bytecode.OpJz, bytecode.OpJnz:
		em.emitExpr(e.kids[0])
		em.rawJump(e.op, e.a)
	case bytecode.OpJmp:
		em.rawJump(e.op, e.a)
	case bytecode.OpTSwitch:
		em.emitExpr(e.kids[0])
		// Copy the original table; targets remapped later.
		orig := em.m.Switches[e.a]
		idx := int32(len(em.switches))
		em.switches = append(em.switches, bytecode.SwitchTable{
			Keys:    append([]int32(nil), orig.Keys...),
			Targets: append([]int32(nil), orig.Targets...),
			Default: orig.Default,
		})
		em.switchFixes = append(em.switchFixes, idx)
		em.raw(bytecode.OpTSwitch, idx, 0)
	case bytecode.OpRet:
		em.raw(bytecode.OpRet, 0, 0)
	case bytecode.OpCall, bytecode.OpCallNat:
		for _, k := range e.kids {
			em.emitExpr(k)
			if e.op == bytecode.OpCallNat {
				em.check()
			}
		}
		em.raw(e.op, e.a, e.b)
		if callReturns(em.callRetProg, bytecode.Instr{Op: e.op, A: e.a, B: e.b}) {
			// Shouldn't happen (value-returning call as root), but drop the
			// value rather than corrupt the stack.
			em.raw(bytecode.OpPop, 0, 0)
		}
	case bytecode.OpCallV:
		em.emitExpr(e.kids[0]) // receiver
		em.check()
		for _, k := range e.kids[1:] {
			em.emitExpr(k)
		}
		em.raw(e.op, e.a, e.b)
		if callReturns(em.callRetProg, bytecode.Instr{Op: e.op, A: e.a, B: e.b}) {
			em.raw(bytecode.OpPop, 0, 0)
		}
	default:
		return fmt.Errorf("unexpected statement root %s", e.op)
	}
	return nil
}

// emitExpr generates a value-producing expression, inserting inline
// status checks before each dereference in status-check mode.
func (em *emitter) emitExpr(e *expr) {
	if e.synthetic {
		return // value already on the runtime stack
	}
	switch e.op {
	case bytecode.OpGetS:
		em.staticCheck(e.a, e.b)
		em.raw(e.op, e.a, e.b)
	case bytecode.OpGetF, bytecode.OpArrLen, bytecode.OpInstOf, bytecode.OpCheckCast:
		em.emitExpr(e.kids[0])
		em.check()
		em.raw(e.op, e.a, e.b)
	case bytecode.OpALoad:
		em.emitExpr(e.kids[0])
		em.check()
		em.emitExpr(e.kids[1])
		em.raw(e.op, e.a, e.b)
	case bytecode.OpCallV:
		em.emitExpr(e.kids[0]) // receiver
		em.check()
		for _, k := range e.kids[1:] {
			em.emitExpr(k)
		}
		em.raw(e.op, e.a, e.b)
	case bytecode.OpCallNat:
		// Natives dereference their ref arguments internally; under the
		// status-check protocol each argument is checked as it is pushed.
		for _, k := range e.kids {
			em.emitExpr(k)
			em.check()
		}
		em.raw(e.op, e.a, e.b)
	default:
		for _, k := range e.kids {
			em.emitExpr(k)
		}
		em.raw(e.op, e.a, e.b)
	}
}

// emitPatch brings the object at a site into the local heap and writes the
// local reference back into the site — the hardcoded-slot handler bodies
// of §III.C ("r = (Random) ObjMan.bringObj(this, \"r\")").
func (em *emitter) emitPatch(st site) {
	switch st.kind {
	case siteLocal:
		em.raw(bytecode.OpLoad, st.slot, 0)
		em.raw(bytecode.OpCallNat, em.natBring, 1)
		em.raw(bytecode.OpStore, st.slot, 0)
	case siteField:
		em.emitExpr(st.base) // base is local: earlier patches ran first
		em.raw(bytecode.OpDup, 0, 0)
		em.raw(bytecode.OpGetF, st.fieldIdx, 0)
		em.raw(bytecode.OpCallNat, em.natBring, 1)
		em.raw(bytecode.OpPutF, st.fieldIdx, 0)
	case siteStatic:
		em.raw(bytecode.OpGetS, st.clsID, st.statIdx)
		em.raw(bytecode.OpCallNat, em.natBring, 1)
		em.raw(bytecode.OpPutS, st.clsID, st.statIdx)
	case siteElem:
		em.emitExpr(st.base)
		em.emitExpr(st.idx)
		em.emitExpr(st.base)
		em.emitExpr(st.idx)
		em.raw(bytecode.OpALoad, 0, 0)
		em.raw(bytecode.OpCallNat, em.natBring, 1)
		em.raw(bytecode.OpAStore, 0, 0)
	}
}

// emitFaultHandlers appends one handler block per pending statement:
//
//	H: pop                      // the RemoteAccessFault object
//	   <patch each site>        // ObjMan.bringObj + write-back
//	   jmp <statement start>    // "goto label1" — retry
func (em *emitter) emitFaultHandlers(remoteFaultClass int32) {
	for _, ph := range em.pending {
		h := em.pc()
		em.raw(bytecode.OpPop, 0, 0)
		for _, st := range ph.sites {
			em.emitPatch(st)
		}
		em.raw(bytecode.OpJmp, ph.retry, 0) // retry pc is already an emitted pc
		em.faultEx = append(em.faultEx, bytecode.ExRange{
			From: ph.from, To: ph.to, Handler: h, ClassID: remoteFaultClass,
		})
	}
}

// emitRestoreHandler appends the Fig 4 restoration handler: reload every
// local slot from the CapturedState carried in the thread's restore
// context, then switch-jump to the saved pc. Returns the handler pc.
func (em *emitter) emitRestoreHandler(illegalStateClass int32) int32 {
	h := em.pc()
	em.raw(bytecode.OpPop, 0, 0) // the InvalidStateException
	for slot := 0; slot < em.nlocals; slot++ {
		em.raw(bytecode.OpIConst, int32(slot), 0)
		em.raw(bytecode.OpCallNat, em.natRstL, 1)
		em.raw(bytecode.OpStore, int32(slot), 0)
	}
	em.raw(bytecode.OpCallNat, em.natRstPC, 0)

	// lookupswitch over the migration-safe points (Fig 4a bci 43).
	keys := append([]int32(nil), em.msps...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	idx := int32(len(em.switches))
	bad := em.pc() + 1 // pc of the bad-pc block, right after the switch
	em.switches = append(em.switches, bytecode.SwitchTable{
		Keys: keys, Targets: append([]int32(nil), keys...), Default: bad,
	})
	em.raw(bytecode.OpTSwitch, idx, 0)

	// Default: the captured pc is not a known MSP — corrupt state.
	scratch := em.newTemp()
	em.raw(bytecode.OpNew, illegalStateClass, 0)
	em.raw(bytecode.OpStore, scratch, 0)
	em.raw(bytecode.OpLoad, scratch, 0)
	em.raw(bytecode.OpThrow, 0, 0)
	return h
}

// remapJumps rewrites branch/switch targets from original to emitted pcs.
func (em *emitter) remapJumps() error {
	remap := func(orig int32) (int32, error) {
		if npc, ok := em.pcMap[orig]; ok {
			return npc, nil
		}
		return 0, fmt.Errorf("jump target %d is not a statement start", orig)
	}
	for _, pc := range em.jumpFixes {
		npc, err := remap(em.code[pc].A)
		if err != nil {
			return err
		}
		em.code[pc].A = npc
	}
	for _, si := range em.switchFixes {
		tbl := &em.switches[si]
		for i, t := range tbl.Targets {
			npc, err := remap(t)
			if err != nil {
				return err
			}
			tbl.Targets[i] = npc
		}
		npc, err := remap(tbl.Default)
		if err != nil {
			return err
		}
		tbl.Default = npc
	}
	// User exception table entries are remapped the same way.
	for _, ex := range em.m.Except {
		from, err := remap(ex.From)
		if err != nil {
			return err
		}
		handler, err := remap(ex.Handler)
		if err != nil {
			return err
		}
		to, ok := em.pcMap[ex.To]
		if !ok {
			if int(ex.To) == len(em.m.Code) {
				to = em.bodyEnd
			} else {
				return fmt.Errorf("exception range end %d is not a statement start", ex.To)
			}
		}
		em.userEx = append(em.userEx, bytecode.ExRange{
			From: from, To: to, Handler: handler, ClassID: ex.ClassID,
		})
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
