package preprocess_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/preprocess"
	"repro/internal/value"
	"repro/internal/vm"
)

// buildGeometry assembles the paper's running example (Fig 4/5):
//
//	class Geometry { Random r; Point p; void displaceX() { p.x = r.nextInt() + (int) p.getX(); } }
//
// with Random.nextInt a deterministic counter, so original and transformed
// programs can be compared for identical results.
func buildGeometry() *bytecode.Program {
	pb := asm.NewProgram()

	rnd := pb.Class("Random", "")
	rnd.Field("seed", value.KindInt)
	next := rnd.Method("nextInt", true)
	next.Line().Load("this").Load("this").GetF("Random", "seed").Int(1103515245).Mul().Int(12345).Add().Int(1 << 31).Mod().PutF("Random", "seed")
	next.Line().Load("this").GetF("Random", "seed").RetV()

	pt := pb.Class("Point", "")
	pt.Field("x", value.KindInt)
	getX := pt.Method("getX", true)
	getX.Line().Load("this").GetF("Point", "x").I2F().RetV()

	geo := pb.Class("Geometry", "")
	geo.Field("r", value.KindRef)
	geo.Field("p", value.KindRef)
	dx := geo.Method("displaceX", false)
	// p.x = r.nextInt() + (int) p.getX()  — nested calls inside one statement.
	dx.Line().
		Load("this").GetF("Geometry", "p").
		Load("this").GetF("Geometry", "r").CallV("nextInt", 1).
		Load("this").GetF("Geometry", "p").CallV("getX", 1).F2I().
		Add().
		PutF("Point", "x")
	dx.Line().Ret()

	mk := pb.Func("makeGeometry", true, "seed")
	mk.Line().New("Geometry").Store("g")
	mk.Line().New("Random").Store("r")
	mk.Line().Load("r").Load("seed").PutF("Random", "seed")
	mk.Line().New("Point").Store("p")
	mk.Line().Load("p").Int(100).PutF("Point", "x")
	mk.Line().Load("g").Load("r").PutF("Geometry", "r")
	mk.Line().Load("g").Load("p").PutF("Geometry", "p")
	mk.Line().Load("g").RetV()

	mb := pb.Func("main", true, "seed", "iters")
	mb.Line().Load("seed").Call("makeGeometry", 1).Store("g")
	mb.Line().Int(0).Store("i")
	mb.Label("loop")
	mb.Line().Load("i").Load("iters").Ge().Jnz("done")
	mb.Line().Load("g").Call("Geometry.displaceX", 1)
	mb.Line().Load("i").Int(1).Add().Store("i")
	mb.Line().Jmp("loop")
	mb.Label("done")
	mb.Line().Load("g").GetF("Geometry", "p").GetF("Point", "x").RetV()

	return pb.MustBuild()
}

func runProg(t *testing.T, p *bytecode.Program, entry string, bind func(*vm.VM), args ...value.Value) (value.Value, error) {
	t.Helper()
	v := vm.New(p, 1, true)
	v.BindNativeIfDeclared(preprocess.NatBringObj, identityBring)
	v.BindNativeIfDeclared(preprocess.NatRstLocal, unboundRestore)
	v.BindNativeIfDeclared(preprocess.NatRstPC, unboundRestore)
	if bind != nil {
		bind(v)
	}
	mid := p.MethodByName(entry)
	if mid < 0 {
		t.Fatalf("no method %q", entry)
	}
	return v.RunMain(mid, args...)
}

// identityBring is the degenerate object manager for single-node runs:
// local refs come back unchanged; nulls become application NPEs.
func identityBring(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
	r := args[0]
	if r.Kind != value.KindRef || r.R == value.NullRef {
		return value.Value{}, &vm.Raised{ExClass: bytecode.ExNullPointer, Message: "null at home"}
	}
	return r, nil
}

func unboundRestore(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
	return value.Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: "no restore context"}
}

func TestPreprocessModesPreserveSemantics(t *testing.T) {
	orig := buildGeometry()
	want, err := runProg(t, orig, "main", nil, value.Int(7), value.Int(25))
	if err != nil {
		t.Fatal(err)
	}

	for _, opts := range []preprocess.Options{
		{Mode: preprocess.ModeNone, Restore: false},
		{Mode: preprocess.ModeNone, Restore: true},
		{Mode: preprocess.ModeFaulting, Restore: true},
		{Mode: preprocess.ModeStatusCheck, Restore: false},
	} {
		name := fmt.Sprintf("%v-restore=%v", opts.Mode, opts.Restore)
		pp, rep, err := preprocess.Preprocess(orig, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, mr := range rep.Methods {
			if !mr.Lifted && mr.Reason != "pragma nopreprocess" {
				t.Errorf("%s: method %s not lifted: %s", name, mr.Name, mr.Reason)
			}
		}
		got, err := runProg(t, pp, "main", nil, value.Int(7), value.Int(25))
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: got %v, want %v", name, got, want)
		}
	}
}

func TestPreprocessSweepsParameterSpace(t *testing.T) {
	orig := buildGeometry()
	pp := preprocess.MustPreprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	for seed := int64(1); seed <= 5; seed++ {
		for iters := int64(0); iters <= 8; iters += 2 {
			want, err1 := runProg(t, orig, "main", nil, value.Int(seed), value.Int(iters))
			got, err2 := runProg(t, pp, "main", nil, value.Int(seed), value.Int(iters))
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed=%d iters=%d: err mismatch %v vs %v", seed, iters, err1, err2)
			}
			if err1 == nil && !got.Equal(want) {
				t.Errorf("seed=%d iters=%d: got %v, want %v", seed, iters, got, want)
			}
		}
	}
}

func TestMSPsAtEveryStatementStart(t *testing.T) {
	orig := buildGeometry()
	pp := preprocess.MustPreprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	m := pp.Methods[pp.MethodByName("Geometry.displaceX")]
	if len(m.MSPs) < 3 {
		t.Fatalf("displaceX should have ≥3 MSPs after flattening (the paper's three statements), got %d: %v\n%s",
			len(m.MSPs), m.MSPs, bytecode.Disassemble(pp, m))
	}
	if m.MSPs[0] != 0 {
		t.Errorf("first MSP should be pc 0, got %d", m.MSPs[0])
	}
	// Every MSP coincides with a line start.
	starts := make(map[int32]bool)
	for _, le := range m.Lines {
		starts[le.PC] = true
	}
	for _, pc := range m.MSPs {
		if !starts[pc] {
			t.Errorf("MSP %d is not a statement start", pc)
		}
	}
}

func TestFig5CodeSizeOrdering(t *testing.T) {
	orig := buildGeometry()
	const method = "Geometry.displaceX"
	origSize := orig.Methods[orig.MethodByName(method)].CodeSize()

	_, repCheck, err := preprocess.Preprocess(orig, preprocess.Options{Mode: preprocess.ModeStatusCheck})
	if err != nil {
		t.Fatal(err)
	}
	_, repFault, err := preprocess.Preprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting})
	if err != nil {
		t.Fatal(err)
	}
	checkSize := repCheck.SizeOf(method)
	faultSize := repFault.SizeOf(method)
	// Fig 5: original 501 B < status checks 667 B < fault handlers 902 B.
	if !(origSize < checkSize && checkSize < faultSize) {
		t.Errorf("size ordering violated: orig=%d check=%d fault=%d", origSize, checkSize, faultSize)
	}
}

// remoteWorld simulates a home node's heap for fault-in tests: the test VM
// runs as node 1; objects "live" at node 2 and are fetched through a fake
// object manager.
type remoteWorld struct {
	home  map[value.Ref]*vm.Object  // home-ref -> master object
	cache map[value.Ref]value.Value // home-ref -> local ref (per-VM cache)
	fetch int
}

func (w *remoteWorld) bring(t *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
	r := args[0]
	if r.Kind != value.KindRef || r.R == value.NullRef {
		return value.Value{}, &vm.Raised{ExClass: bytecode.ExNullPointer, Message: "null at home"}
	}
	if t.VM.Heap.IsLocal(r.R) {
		return r, nil
	}
	if lv, ok := w.cache[r.R]; ok {
		return lv, nil
	}
	master, ok := w.home[r.R]
	if !ok {
		return value.Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: "unknown remote ref"}
	}
	w.fetch++
	clone := *master
	clone.Fields = append([]value.Value(nil), master.Fields...)
	clone.Home = r.R
	local, err := t.VM.Heap.Adopt(&clone)
	if err != nil {
		return value.Value{}, &vm.Raised{ExClass: bytecode.ExOutOfMemory}
	}
	lv := value.RefVal(local)
	w.cache[r.R] = lv
	return lv, nil
}

func TestObjectFaultingFetchesRemoteObjects(t *testing.T) {
	pb := asm.NewProgram()
	c := pb.Class("Cell", "")
	c.Field("v", value.KindInt)
	c.Field("next", value.KindRef)
	mb := pb.Func("main", true, "head")
	// Sum cell.v over a 3-element remote linked list.
	mb.Line().Int(0).Store("sum")
	mb.Label("loop")
	mb.Line().Load("head").Null().Eq().Jnz("done")
	mb.Line().Load("sum").Load("head").GetF("Cell", "v").Add().Store("sum")
	mb.Line().Load("head").GetF("Cell", "next").Store("head")
	mb.Line().Jmp("loop")
	mb.Label("done")
	mb.Line().Load("sum").RetV()
	orig := pb.MustBuild()
	pp := preprocess.MustPreprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})

	cellID := pp.ClassByName("Cell")
	w := &remoteWorld{home: map[value.Ref]*vm.Object{}, cache: map[value.Ref]value.Value{}}
	// Home (node 2) list: 10 -> 20 -> 30.
	r3 := value.MakeRef(2, 3)
	r2 := value.MakeRef(2, 2)
	r1 := value.MakeRef(2, 1)
	w.home[r3] = &vm.Object{Class: cellID, Status: 1, Fields: []value.Value{value.Int(30), value.Null()}}
	w.home[r2] = &vm.Object{Class: cellID, Status: 1, Fields: []value.Value{value.Int(20), value.RefVal(r3)}}
	w.home[r1] = &vm.Object{Class: cellID, Status: 1, Fields: []value.Value{value.Int(10), value.RefVal(r2)}}

	res, err := runProg(t, pp, "main", func(v *vm.VM) {
		v.BindNative(preprocess.NatBringObj, w.bring)
	}, value.RefVal(r1))
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 60 {
		t.Errorf("sum = %d, want 60", res.I)
	}
	if w.fetch != 3 {
		t.Errorf("fetched %d objects, want 3 (one per cell)", w.fetch)
	}
}

func TestStatusCheckFetchesRemoteObjects(t *testing.T) {
	pb := asm.NewProgram()
	c := pb.Class("Box", "")
	c.Field("v", value.KindInt)
	mb := pb.Func("main", true, "box")
	mb.Line().Load("box").GetF("Box", "v").Load("box").GetF("Box", "v").Add().RetV()
	orig := pb.MustBuild()
	pp := preprocess.MustPreprocess(orig, preprocess.Options{Mode: preprocess.ModeStatusCheck})

	boxID := pp.ClassByName("Box")
	w := &remoteWorld{home: map[value.Ref]*vm.Object{}, cache: map[value.Ref]value.Value{}}
	rb := value.MakeRef(2, 1)
	w.home[rb] = &vm.Object{Class: boxID, Status: 1, Fields: []value.Value{value.Int(21)}}

	res, err := runProg(t, pp, "main", func(v *vm.VM) {
		v.BindNative(preprocess.NatBringObj, w.bring)
	}, value.RefVal(rb))
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 42 {
		t.Errorf("got %d, want 42", res.I)
	}
	if w.fetch != 1 {
		t.Errorf("fetched %d, want 1", w.fetch)
	}
}

func TestApplicationNPEPassesThroughFaultHandlers(t *testing.T) {
	pb := asm.NewProgram()
	c := pb.Class("Box", "")
	c.Field("v", value.KindInt)
	mb := pb.Func("main", true)
	// Genuine null dereference inside a method with fault handlers: the
	// handlers catch RemoteAccessFault only, so the app-level NPE escapes.
	mb.Line().Null().Store("b")
	mb.Line().Load("b").GetF("Box", "v").RetV()
	orig := pb.MustBuild()
	pp := preprocess.MustPreprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})

	_, err := runProg(t, pp, "main", nil)
	var ue *vm.UncaughtError
	if !errors.As(err, &ue) || ue.ClassName != bytecode.ExNullPointer {
		t.Fatalf("err = %v, want application NullPointerException", err)
	}
}

func TestUserTryCatchSurvivesTransform(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true, "d")
	mb.Label("try")
	mb.Line().Int(100).Load("d").Div().Store("q")
	mb.Line().Load("q").RetV()
	mb.Label("endtry")
	mb.Label("catch")
	mb.Store("e")
	mb.Line().Int(-1).RetV()
	mb.Try("try", "endtry", "catch", bytecode.ExArithmetic)
	orig := pb.MustBuild()
	pp := preprocess.MustPreprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})

	res, err := runProg(t, pp, "main", nil, value.Int(4))
	if err != nil || res.I != 25 {
		t.Fatalf("normal path: res=%v err=%v", res, err)
	}
	res, err = runProg(t, pp, "main", nil, value.Int(0))
	if err != nil || res.I != -1 {
		t.Fatalf("exception path: res=%v err=%v", res, err)
	}
}

func TestNoPreprocessPragma(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Pragma("nopreprocess")
	mb.Int(1).Int(2).Add().RetV()
	orig := pb.MustBuild()
	pp, rep, err := preprocess.Preprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	if err != nil {
		t.Fatal(err)
	}
	m := pp.Methods[pp.MethodByName("main")]
	if len(m.MSPs) != 0 {
		t.Error("nopreprocess method should carry no MSPs")
	}
	found := false
	for _, mr := range rep.Methods {
		if mr.Name == "main" && mr.Reason == "pragma nopreprocess" {
			found = true
		}
	}
	if !found {
		t.Error("report should record the pragma skip")
	}
	res, err := runProg(t, pp, "main", nil)
	if err != nil || res.I != 3 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestUnliftableMethodFallsBack(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Int(21).Dup().Add().RetV() // Dup breaks the statement discipline
	orig := pb.MustBuild()
	pp, rep, err := preprocess.Preprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	if err != nil {
		t.Fatal(err)
	}
	var mr *preprocess.MethodReport
	for i := range rep.Methods {
		if rep.Methods[i].Name == "main" {
			mr = &rep.Methods[i]
		}
	}
	if mr == nil || mr.Lifted {
		t.Fatal("Dup method should not lift")
	}
	res, err := runProg(t, pp, "main", nil)
	if err != nil || res.I != 42 {
		t.Fatalf("fallback method should still run: res=%v err=%v", res, err)
	}
}

func TestPreprocessIsIdempotentOnResults(t *testing.T) {
	orig := buildGeometry()
	p1 := preprocess.MustPreprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
	// Transforming an already-transformed program is not something the
	// pipeline does, but its *output* must still verify and run.
	want, err := runProg(t, p1, "main", nil, value.Int(3), value.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if want.Kind != value.KindInt {
		t.Fatal("expected int result")
	}
}
