package preprocess_test

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/preprocess"
	"repro/internal/value"
	"repro/internal/vm"
)

// genExpr emits a random integer expression of the given depth onto mb's
// stack, drawing leaves from the two argument locals and small constants,
// and internal nodes from arithmetic ops, field reads of a Box object in
// local "box", and calls to a pure helper function. It returns nothing;
// the expression value is left on the operand stack.
func genExpr(rng *rand.Rand, mb *asm.MethodBuilder, depth int) {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			mb.Load("a")
		case 1:
			mb.Load("b")
		case 2:
			mb.Int(int64(rng.Intn(21) - 10))
		default:
			mb.Load("box").GetF("Box", "v")
		}
		return
	}
	switch rng.Intn(6) {
	case 0:
		genExpr(rng, mb, depth-1)
		genExpr(rng, mb, depth-1)
		mb.Add()
	case 1:
		genExpr(rng, mb, depth-1)
		genExpr(rng, mb, depth-1)
		mb.Sub()
	case 2:
		genExpr(rng, mb, depth-1)
		genExpr(rng, mb, depth-1)
		mb.Mul()
	case 3:
		// helper(x) = 2x+1 — a nested call the flattener must spill.
		genExpr(rng, mb, depth-1)
		mb.Call("helper", 1)
	case 4:
		genExpr(rng, mb, depth-1)
		mb.Neg()
	default:
		genExpr(rng, mb, depth-1)
		genExpr(rng, mb, depth-1)
		mb.Xor()
	}
}

// genProgram builds a random program: a chain of statements assigning
// random expressions to locals, a conditional branch, and a loop summing
// into an accumulator.
func genProgram(seed int64) *bytecode.Program {
	rng := rand.New(rand.NewSource(seed))
	pb := asm.NewProgram()
	box := pb.Class("Box", "")
	box.Field("v", value.KindInt)

	h := pb.Func("helper", true, "x")
	h.Line().Load("x").Int(2).Mul().Int(1).Add().RetV()

	mb := pb.Func("main", true, "a", "b")
	mb.Line().New("Box").Store("box")
	mb.Line().Load("box").Int(int64(rng.Intn(50))).PutF("Box", "v")

	nStmts := 2 + rng.Intn(4)
	for i := 0; i < nStmts; i++ {
		mb.Line()
		genExpr(rng, mb, 1+rng.Intn(3))
		mb.Store("t")
		// Fold into the accumulator so nothing is dead.
		mb.Line().Load("acc").Load("t").Xor().Store("acc")
	}
	// A branch whose condition is itself a random expression.
	mb.Line()
	genExpr(rng, mb, 2)
	mb.Jz("skip")
	mb.Line().Load("acc").Int(7).Mul().Store("acc")
	mb.Label("skip")
	// A short loop with a field write.
	mb.Line().Int(0).Store("i")
	mb.Label("loop")
	mb.Line().Load("i").Int(5).Ge().Jnz("done")
	mb.Line().Load("box").Load("box").GetF("Box", "v").Load("i").Add().PutF("Box", "v")
	mb.Line().Load("i").Int(1).Add().Store("i")
	mb.Line().Jmp("loop")
	mb.Label("done")
	mb.Line().Load("acc").Load("box").GetF("Box", "v").Add().RetV()

	return pb.MustBuild()
}

func runOn(t *testing.T, p *bytecode.Program, a, b int64) (value.Value, error) {
	t.Helper()
	v := vm.New(p, 1, true)
	v.BindNativeIfDeclared(preprocess.NatBringObj, func(th *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
		return args[0], nil
	})
	v.BindNativeIfDeclared(preprocess.NatRstLocal, func(th *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
		return value.Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState}
	})
	v.BindNativeIfDeclared(preprocess.NatRstPC, func(th *vm.Thread, args []value.Value) (value.Value, *vm.Raised) {
		return value.Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState}
	})
	return v.RunMain(p.MethodByName("main"), value.Int(a), value.Int(b))
}

// TestPropertyPreprocessPreservesRandomPrograms is the core preprocessor
// property: for randomly generated programs and inputs, every
// instrumentation mode computes exactly what the original computes.
func TestPropertyPreprocessPreservesRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		orig := genProgram(seed)
		variants := map[string]*bytecode.Program{
			"none":  preprocess.MustPreprocess(orig, preprocess.Options{Mode: preprocess.ModeNone, Restore: true}),
			"fault": preprocess.MustPreprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true}),
			"check": preprocess.MustPreprocess(orig, preprocess.Options{Mode: preprocess.ModeStatusCheck, Restore: false}),
		}
		for _, in := range [][2]int64{{0, 0}, {1, 2}, {-5, 13}, {100, -100}} {
			want, werr := runOn(t, orig, in[0], in[1])
			for name, pp := range variants {
				got, gerr := runOn(t, pp, in[0], in[1])
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("seed %d %s in=%v: err %v vs %v", seed, name, in, werr, gerr)
				}
				if werr == nil && !got.Equal(want) {
					t.Fatalf("seed %d %s in=%v: got %v want %v", seed, name, in, got, want)
				}
			}
		}
	}
}

// TestPropertyMSPDensity: after flattening, every statement boundary in a
// lifted method is an MSP, and MSP count is at least the statement count
// of the original (flattening only adds boundaries).
func TestPropertyMSPDensity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		orig := genProgram(seed)
		pp, rep, err := preprocess.Preprocess(orig, preprocess.Options{Mode: preprocess.ModeFaulting, Restore: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, mr := range rep.Methods {
			if !mr.Lifted {
				t.Fatalf("seed %d: %s not lifted: %s", seed, mr.Name, mr.Reason)
			}
			m := pp.Methods[pp.MethodByName(mr.Name)]
			if mr.Name == "main" && len(m.MSPs) < mr.Stmts {
				t.Errorf("seed %d: %d MSPs for %d statements", seed, len(m.MSPs), mr.Stmts)
			}
		}
	}
}

// TestPropertyVerifierAcceptsAllTransforms: the output of every transform
// passes the bytecode verifier (Preprocess runs it internally; this test
// asserts it again explicitly on a fresh pass for belt and braces).
func TestPropertyVerifierAcceptsAllTransforms(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		orig := genProgram(seed)
		for _, mode := range []preprocess.Mode{preprocess.ModeNone, preprocess.ModeFaulting, preprocess.ModeStatusCheck} {
			pp := preprocess.MustPreprocess(orig, preprocess.Options{Mode: mode, Restore: true})
			if err := bytecode.Verify(pp); err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
		}
	}
}
