package preprocess

import (
	"fmt"

	"repro/internal/bytecode"
)

// Mode selects the remote-object detection scheme injected into the code.
type Mode int

const (
	// ModeNone injects no DSM instrumentation (used by the plain-JDK
	// reference, the eager-copy process-migration baseline and the Xen
	// baseline, none of which fault objects in).
	ModeNone Mode = iota
	// ModeFaulting injects object fault handlers (Fig 5 B2) — the paper's
	// contribution: zero cost on the normal path, exception-driven fetch.
	ModeFaulting
	// ModeStatusCheck injects hoisted status checks before every access
	// (Fig 5 B1) — the classical object-DSM baseline (JavaSplit-style,
	// also how the JESSICA2 comparison system detects remote objects).
	ModeStatusCheck
)

func (m Mode) String() string {
	switch m {
	case ModeFaulting:
		return "faulting"
	case ModeStatusCheck:
		return "statuscheck"
	default:
		return "none"
	}
}

// Options configures a preprocessing pass.
type Options struct {
	Mode Mode
	// Restore injects the Fig 4 restoration handlers needed by JVMTI-style
	// frame reconstruction (SODEE and the G-JavaMPI baseline). Systems that
	// rebuild frames inside the VM (JESSICA2) or migrate whole VM images
	// (Xen) do not need them.
	Restore bool
}

// MethodReport records what happened to one method.
type MethodReport struct {
	Name          string
	Lifted        bool
	Reason        string // why lifting was skipped/failed
	Stmts         int
	FaultHandlers int
	OrigSize      int // serialized body size in bytes (Fig 5 comparison)
	NewSize       int
}

// Report summarizes a preprocessing pass.
type Report struct {
	Mode    Mode
	Methods []MethodReport
}

// SizeOf returns the post-transform code size of a method by name, or -1.
func (r *Report) SizeOf(name string) int {
	for _, mr := range r.Methods {
		if mr.Name == name {
			return mr.NewSize
		}
	}
	return -1
}

// Preprocess transforms every method of p per opts and returns a new,
// verified program. The input program is not modified; classes and the
// virtual-name table are shared (they are immutable).
func Preprocess(p *bytecode.Program, opts Options) (*bytecode.Program, *Report, error) {
	natives := append([]bytecode.NativeSig(nil), p.Natives...)
	have := make(map[string]bool, len(natives))
	for _, n := range natives {
		have[n.Name] = true
	}
	for _, sig := range []bytecode.NativeSig{
		{Name: NatBringObj, NArgs: 1, ReturnsValue: true},
		{Name: NatRstLocal, NArgs: 1, ReturnsValue: true},
		{Name: NatRstPC, NArgs: 0, ReturnsValue: true},
	} {
		if !have[sig.Name] {
			natives = append(natives, sig)
		}
	}

	out := &bytecode.Program{
		Classes: p.Classes,
		Natives: natives,
		VNames:  p.VNames,
	}
	out.BuildIndexes() // for NativeByName during emission

	remoteFault := p.ClassByName(bytecode.ExRemoteFault)
	invalidState := p.ClassByName(bytecode.ExInvalidState)
	illegalState := p.ClassByName(bytecode.ExIllegalState)
	if remoteFault < 0 || invalidState < 0 || illegalState < 0 {
		return nil, nil, fmt.Errorf("preprocess: program lacks builtin exception classes")
	}

	rep := &Report{Mode: opts.Mode}
	for _, m := range p.Methods {
		nm, mr, err := transformMethod(p, out, m, opts, remoteFault, invalidState, illegalState)
		if err != nil {
			return nil, nil, fmt.Errorf("preprocess %s: %w", p.QualifiedName(m), err)
		}
		mr.Name = p.QualifiedName(m)
		mr.OrigSize = m.CodeSize()
		mr.NewSize = nm.CodeSize()
		rep.Methods = append(rep.Methods, mr)
		out.Methods = append(out.Methods, nm)
	}
	out.BuildIndexes()
	if err := bytecode.Verify(out); err != nil {
		return nil, nil, fmt.Errorf("preprocess: output fails verification: %w", err)
	}
	return out, rep, nil
}

// MustPreprocess is Preprocess that panics on error (fixed workloads).
func MustPreprocess(p *bytecode.Program, opts Options) *bytecode.Program {
	out, _, err := Preprocess(p, opts)
	if err != nil {
		panic(err)
	}
	return out
}

// copyMethod clones m unchanged except for stripping MSPs (an untransformed
// method never migrates).
func copyMethod(m *bytecode.Method) *bytecode.Method {
	nm := *m
	nm.Code = append([]bytecode.Instr(nil), m.Code...)
	nm.Except = append([]bytecode.ExRange(nil), m.Except...)
	nm.MSPs = nil
	nm.BuildMSPSet()
	return &nm
}

func transformMethod(p, out *bytecode.Program, m *bytecode.Method, opts Options,
	remoteFault, invalidState, illegalState int32) (*bytecode.Method, MethodReport, error) {

	var mr MethodReport
	if m.Pragmas != nil && m.Pragmas["nopreprocess"] {
		mr.Reason = "pragma nopreprocess"
		return copyMethod(m), mr, nil
	}
	stmts, err := lift(p, m)
	if err != nil {
		mr.Reason = err.Error()
		return copyMethod(m), mr, nil
	}
	mr.Lifted = true
	mr.Stmts = len(stmts)

	em := newEmitter(out, m, opts)
	em.callRetProg = p
	for _, s := range stmts {
		if err := em.emitStmt(s); err != nil {
			return nil, mr, err
		}
	}
	em.bodyEnd = em.pc()
	if err := em.remapJumps(); err != nil {
		return nil, mr, err
	}

	if opts.Mode == ModeFaulting {
		em.emitFaultHandlers(remoteFault)
		mr.FaultHandlers = len(em.pending)
	}
	var restoreEx []bytecode.ExRange
	if opts.Restore {
		h := em.emitRestoreHandler(illegalState)
		restoreEx = []bytecode.ExRange{{From: 0, To: em.bodyEnd, Handler: h, ClassID: invalidState}}
	}

	nm := &bytecode.Method{
		ID:           m.ID,
		ClassID:      m.ClassID,
		Name:         m.Name,
		NArgs:        m.NArgs,
		NLocals:      em.nlocals,
		ReturnsValue: m.ReturnsValue,
		Virtual:      m.Virtual,
		Code:         em.code,
		Consts:       m.Consts,
		Strings:      m.Strings,
		Lines:        em.lines,
		Switches:     em.switches,
		MSPs:         em.msps,
		Pragmas:      m.Pragmas,
	}
	// Handler-match order: per-statement fault handlers (innermost), then
	// the user's own try/catch entries, then the whole-body restoration
	// range (outermost).
	nm.Except = append(nm.Except, em.faultEx...)
	nm.Except = append(nm.Except, em.userEx...)
	nm.Except = append(nm.Except, restoreEx...)
	nm.BuildMSPSet()
	return nm, mr, nil
}
