package toolif_test

import (
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/toolif"
	"repro/internal/value"
	"repro/internal/vm"
)

// buildLooper returns a program whose main loops at MSPs calling inner()
// so an agent can suspend and inspect a two-frame stack.
func buildLooper() *bytecode.Program {
	pb := asm.NewProgram()
	inner := pb.Func("inner", true, "x")
	inner.Line().MSP().Load("x").Int(3).Mul().Store("y")
	inner.Line().MSP().Load("y").RetV()

	mb := pb.Func("main", true, "n")
	mb.Line().Int(0).Store("i")
	mb.Label("loop")
	mb.Line().MSP().Load("i").Load("n").Ge().Jnz("done")
	mb.Line().MSP().Load("i").Call("inner", 1).Store("v")
	mb.Line().MSP().Load("i").Int(1).Add().Store("i")
	mb.Line().Jmp("loop")
	mb.Label("done")
	mb.Line().Load("v").RetV()
	return pb.MustBuild()
}

func suspend(t *testing.T, a *toolif.Agent, th *vm.Thread) {
	t.Helper()
	ok, err := a.SuspendAtSafePoint(th)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("thread finished before suspension")
	}
}

func TestFrameInspection(t *testing.T) {
	prog := buildLooper()
	v := vm.New(prog, 1, true)
	a := toolif.Attach(v)
	th, err := v.NewThread(prog.MethodByName("main"), value.Int(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	go th.Run()
	suspend(t, a, th)
	defer func() {
		_ = a.Kill(th)
	}()

	n := a.GetFrameCount(th)
	if n < 1 {
		t.Fatalf("frame count %d", n)
	}
	mid, pc, err := a.GetFrameLocation(th, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Methods[mid].IsMSP(pc) {
		t.Errorf("suspended at non-MSP pc %d of %s", pc, prog.Methods[mid].Name)
	}
	nl, err := a.NumLocals(th, 0)
	if err != nil || nl == 0 {
		t.Fatalf("NumLocals = %d, %v", nl, err)
	}
	if _, err := a.GetLocal(th, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.GetLocal(th, 0, 99); err == nil {
		t.Error("out-of-range slot should error")
	}
	if _, _, err := a.GetFrameLocation(th, 99); err == nil {
		t.Error("out-of-range depth should error")
	}
}

func TestSetLocalVisibleToProgram(t *testing.T) {
	prog := buildLooper()
	v := vm.New(prog, 1, true)
	a := toolif.Attach(v)
	th, _ := v.NewThread(prog.MethodByName("main"), value.Int(30_000_000))
	done := make(chan struct{})
	go func() { th.Run(); close(done) }()
	suspend(t, a, th)
	// Force the loop counter near its bound so the program ends quickly.
	if err := a.SetLocal(th, th.Depth()-1, 1, value.Int(29_999_999)); err != nil {
		// depth-th frame may be inner; find main instead
		t.Fatal(err)
	}
	// main's i is slot 1 only if main is the frame we patched; to be
	// robust, patch every frame's slot 1 when present.
	for d := 0; d < a.GetFrameCount(th); d++ {
		_ = a.SetLocal(th, d, 1, value.Int(29_999_999))
	}
	if err := a.Resume(th); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("program did not finish after counter patch")
	}
}

func TestBreakpointFires(t *testing.T) {
	prog := buildLooper()
	v := vm.New(prog, 1, true)
	a := toolif.Attach(v)
	innerID := prog.MethodByName("inner")

	th, _ := v.NewThread(prog.MethodByName("main"), value.Int(100))
	hit := make(chan int32, 1)
	a.SetCallback(th, func(tt *vm.Thread, f *vm.Frame) *vm.Raised {
		select {
		case hit <- f.PC:
		default:
		}
		return nil
	})
	a.SetBreakpoint(th, innerID, 0)
	done := make(chan struct{})
	go func() { th.Run(); close(done) }()
	select {
	case pc := <-hit:
		if pc != 0 {
			t.Errorf("breakpoint hit at pc %d, want 0", pc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("breakpoint never fired")
	}
	<-done
	if th.Err != nil {
		t.Fatal(th.Err)
	}
}

func TestBreakpointIsOneShot(t *testing.T) {
	prog := buildLooper()
	v := vm.New(prog, 1, true)
	a := toolif.Attach(v)
	innerID := prog.MethodByName("inner")
	th, _ := v.NewThread(prog.MethodByName("main"), value.Int(50))
	hits := 0
	a.SetCallback(th, func(tt *vm.Thread, f *vm.Frame) *vm.Raised {
		hits++
		return nil
	})
	a.SetBreakpoint(th, innerID, 0)
	th.Run()
	if hits != 1 {
		t.Errorf("breakpoint fired %d times; armed breakpoints are one-shot", hits)
	}
}

func TestBreakpointCallbackCanThrow(t *testing.T) {
	prog := buildLooper()
	v := vm.New(prog, 1, true)
	a := toolif.Attach(v)
	th, _ := v.NewThread(prog.MethodByName("main"), value.Int(50))
	a.SetCallback(th, func(tt *vm.Thread, f *vm.Frame) *vm.Raised {
		return &vm.Raised{ExClass: bytecode.ExIllegalState, Message: "from breakpoint"}
	})
	a.SetBreakpoint(th, prog.MethodByName("inner"), 0)
	th.Run()
	if th.Err == nil {
		t.Fatal("thrown exception from callback should surface")
	}
}

func TestForceEarlyReturn(t *testing.T) {
	prog := buildLooper()
	v := vm.New(prog, 1, true)
	a := toolif.Attach(v)
	th, _ := v.NewThread(prog.MethodByName("main"), value.Int(40_000_000))
	done := make(chan struct{})
	go func() { th.Run(); close(done) }()
	suspend(t, a, th)
	// Pop everything but the bottom frame, then let main see v and finish
	// by patching i to the bound.
	depth := th.Depth()
	if depth > 1 {
		if err := a.ForceEarlyReturn(th, depth-1, value.Int(777), true); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < a.GetFrameCount(th); d++ {
		_ = a.SetLocal(th, d, 1, value.Int(39_999_999))
	}
	if err := a.Resume(th); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hung after forced return")
	}
}

func TestTruncateAndPin(t *testing.T) {
	prog := buildLooper()
	v := vm.New(prog, 1, true)
	a := toolif.Attach(v)
	th, _ := v.NewThread(prog.MethodByName("main"), value.Int(40_000_000))
	go th.Run()
	suspend(t, a, th)
	if err := a.PinFrame(th, 0); err != nil {
		t.Fatal(err)
	}
	if !a.IsFramePinned(th, 0) {
		t.Error("pin not visible")
	}
	if err := a.TruncateTo(th, th.Depth()); err != nil {
		t.Fatal(err) // no-op truncate is legal
	}
	if err := a.TruncateTo(th, th.Depth()+1); err == nil {
		t.Error("over-truncate should error")
	}
	_ = a.Kill(th)
}

func TestForceEarlyReturnRequiresPark(t *testing.T) {
	prog := buildLooper()
	v := vm.New(prog, 1, true)
	a := toolif.Attach(v)
	th, _ := v.NewThread(prog.MethodByName("main"), value.Int(10))
	// Not running, not parked.
	if err := a.ForceEarlyReturn(th, 1, value.Int(0), false); err == nil {
		t.Error("ForceEarlyReturn on non-parked thread should error")
	}
	th.Run()
}
