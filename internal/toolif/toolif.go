// Package toolif is the SVM's tool interface: the analog of JVMTI, the
// standard debugging interface SODEE builds on (§III.A). It exposes frame
// inspection, local-variable access, breakpoints with callbacks, forced
// early return and exception injection — everything the migration manager
// needs — while keeping the manager *outside* the VM core, which is the
// portability property the paper claims for SODEE (no JVM hacking).
//
// Costs: JVMTI calls are not free. The paper measures GetFrameLocation at
// under 1µs but GetLocal<type> at ~30µs, and attributes SODEE's larger
// capture time (vs JESSICA2's in-kernel capture) to exactly this. The
// Agent reproduces that cost structure with calibrated busy-wait loops:
// cheap calls spin ~100ns, local-variable accessors spin ~3µs (scaled from
// the paper's 2009-era numbers to keep totals in the same proportion).
// JESSICA2-style direct capture bypasses this package entirely.
package toolif

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/value"
	"repro/internal/vm"
)

// Call-cost spin counts (iterations of a trivial loop). Calibrated so the
// accessor-call : frame-call cost ratio is ~30:1 as measured in §IV.A.
const (
	spinCheap    = 60   // GetFrameLocation, GetFrameCount, ...
	spinAccessor = 1800 // GetLocal*/SetLocal* per slot
)

// spinSink defeats dead-code elimination of the spin loops; atomic
// because agents on concurrent threads spin simultaneously.
var spinSink atomic.Uint64

func spin(n int) {
	s := spinSink.Load()
	for i := 0; i < n; i++ {
		s = s*1664525 + 1013904223
	}
	spinSink.Store(s)
}

// BreakpointCallback runs in the interpreter goroutine when a breakpoint
// is hit, before the instruction at the breakpoint executes (the JVMTI
// cbBreakpoint analog of Fig 4b). Returning a non-nil Raised throws that
// exception at the breakpoint — the mechanism restoration uses to enter
// the injected handlers.
type BreakpointCallback func(t *vm.Thread, f *vm.Frame) *vm.Raised

type bpKey struct {
	method int32
	pc     int32
}

// Agent is an attached tool agent for one VM. It corresponds to the
// migration manager's JVMTI agent, "injected into the JVM at startup time".
type Agent struct {
	VM *vm.VM

	mu sync.Mutex
	// Breakpoints and callbacks are per thread: a node can be restoring
	// several migrated-in stacks at once (concurrent pushes, steals and
	// chain plants all land here), and two restorations of the same
	// method must not consume each other's breakpoints or callbacks.
	bps map[*vm.Thread]map[bpKey]struct{}
	cbs map[*vm.Thread]BreakpointCallback

	// hooked tracks threads that currently run with the debug hook
	// installed ("mixed-mode": debugging functions force the slow path;
	// SODEE disables them outside migration events).
	hooked map[*vm.Thread]bool
}

// Attach loads an agent into the VM (the -agentlib analog). It flips the
// profile's AgentLoaded flag, enabling safepoint bookkeeping — the source
// of the paper's C1 overhead component.
func Attach(v *vm.VM) *Agent {
	a := &Agent{
		VM:     v,
		bps:    make(map[*vm.Thread]map[bpKey]struct{}),
		cbs:    make(map[*vm.Thread]BreakpointCallback),
		hooked: make(map[*vm.Thread]bool),
	}
	v.Profile.AgentLoaded = true
	return a
}

// --- thread control ---

// SuspendAtSafePoint asks the thread to park at its next migration-safe
// point and blocks until it has parked (or finished). It reports whether
// the thread actually parked.
func (a *Agent) SuspendAtSafePoint(t *vm.Thread) (bool, error) {
	ack, err := t.RequestSuspend()
	if err != nil {
		return false, err
	}
	<-ack
	return t.State() == vm.ThreadParked, nil
}

// Resume unparks a suspended thread.
func (a *Agent) Resume(t *vm.Thread) error { return t.Resume() }

// Kill terminates a suspended thread.
func (a *Agent) Kill(t *vm.Thread) error { return t.Kill() }

// --- frame inspection (cheap calls) ---

// GetFrameCount returns the thread's frame count.
func (a *Agent) GetFrameCount(t *vm.Thread) int {
	spin(spinCheap)
	return t.Depth()
}

// GetFrameLocation returns the executing method and pc of the frame at
// depth (0 = top, JVMTI convention). For non-top frames the reported pc is
// the pending invoke instruction.
func (a *Agent) GetFrameLocation(t *vm.Thread, depth int) (methodID int32, pc int32, err error) {
	spin(spinCheap)
	f, err := a.frameAt(t, depth)
	if err != nil {
		return 0, 0, err
	}
	pc = f.PC
	if depth > 0 {
		pc = f.CallPC()
	}
	return f.Method.ID, pc, nil
}

// IsFramePinned reports the pinned flag of the frame at depth.
func (a *Agent) IsFramePinned(t *vm.Thread, depth int) bool {
	spin(spinCheap)
	f, err := a.frameAt(t, depth)
	return err == nil && f.Pinned
}

func (a *Agent) frameAt(t *vm.Thread, depth int) (*vm.Frame, error) {
	n := t.Depth()
	if depth < 0 || depth >= n {
		return nil, fmt.Errorf("toolif: frame depth %d out of range (count %d)", depth, n)
	}
	return t.Frames[n-1-depth], nil
}

// --- local variable access (expensive calls, ~30µs in the paper) ---

// GetLocal reads local slot of the frame at depth.
func (a *Agent) GetLocal(t *vm.Thread, depth int, slot int) (value.Value, error) {
	spin(spinAccessor)
	f, err := a.frameAt(t, depth)
	if err != nil {
		return value.Value{}, err
	}
	if slot < 0 || slot >= len(f.Locals) {
		return value.Value{}, fmt.Errorf("toolif: slot %d out of range", slot)
	}
	return f.Locals[slot], nil
}

// SetLocal writes local slot of the frame at depth.
func (a *Agent) SetLocal(t *vm.Thread, depth int, slot int, v value.Value) error {
	spin(spinAccessor)
	f, err := a.frameAt(t, depth)
	if err != nil {
		return err
	}
	if slot < 0 || slot >= len(f.Locals) {
		return fmt.Errorf("toolif: slot %d out of range", slot)
	}
	f.Locals[slot] = v
	return nil
}

// NumLocals returns the local-slot count of the frame at depth.
func (a *Agent) NumLocals(t *vm.Thread, depth int) (int, error) {
	spin(spinCheap)
	f, err := a.frameAt(t, depth)
	if err != nil {
		return 0, err
	}
	return len(f.Locals), nil
}

// --- statics ---

// GetStatic reads a static field.
func (a *Agent) GetStatic(classID int32, idx int) (value.Value, error) {
	spin(spinCheap)
	s := a.VM.Statics[classID]
	if s == nil || idx < 0 || idx >= len(s) {
		return value.Value{}, fmt.Errorf("toolif: static %d.%d unavailable", classID, idx)
	}
	return s[idx], nil
}

// SetStatic writes a static field (the SetStatic<Type>Field analog used
// during restoration).
func (a *Agent) SetStatic(classID int32, idx int, v value.Value) error {
	spin(spinCheap)
	a.VM.MarkLoaded(classID)
	s := a.VM.Statics[classID]
	if s == nil || idx < 0 || idx >= len(s) {
		return fmt.Errorf("toolif: static %d.%d unavailable", classID, idx)
	}
	s[idx] = v
	return nil
}

// --- breakpoints ---

// SetCallback installs t's breakpoint callback: it fires only for
// breakpoints armed on t, so concurrent restorations on one node cannot
// steal each other's events.
func (a *Agent) SetCallback(t *vm.Thread, cb BreakpointCallback) {
	a.mu.Lock()
	a.cbs[t] = cb
	a.mu.Unlock()
}

// SetBreakpoint arms a breakpoint at (methodID, pc) for t and enables the
// debug hook on it. While any breakpoint is armed the thread runs in the
// slow "interpreted" path — mirroring mixed-mode JVMs where enabled
// debugging functions force interpretation (§III.A).
func (a *Agent) SetBreakpoint(t *vm.Thread, methodID, pc int32) {
	a.mu.Lock()
	set := a.bps[t]
	if set == nil {
		set = make(map[bpKey]struct{})
		a.bps[t] = set
	}
	set[bpKey{methodID, pc}] = struct{}{}
	a.mu.Unlock()
	a.enableHook(t)
}

// ClearBreakpoint disarms one of t's breakpoints (the hook stays until
// ClearAllBreakpoints so restoration can chain breakpoints cheaply).
func (a *Agent) ClearBreakpoint(t *vm.Thread, methodID, pc int32) {
	a.mu.Lock()
	delete(a.bps[t], bpKey{methodID, pc})
	a.mu.Unlock()
}

// ClearAllBreakpoints disarms everything armed on t and removes its debug
// hook — "disable all debugging functions before and after a migration
// event, so this approach is of reasonably slight overheads".
func (a *Agent) ClearAllBreakpoints(t *vm.Thread) {
	a.mu.Lock()
	delete(a.bps, t)
	delete(a.cbs, t)
	a.mu.Unlock()
	a.disableHook(t)
}

func (a *Agent) enableHook(t *vm.Thread) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.hooked[t] {
		return
	}
	a.hooked[t] = true
	t.SetInstrHook(func(th *vm.Thread, f *vm.Frame, ins bytecode.Instr) *vm.Raised {
		a.mu.Lock()
		_, hit := a.bps[th][bpKey{f.Method.ID, f.PC}]
		cb := a.cbs[th]
		a.mu.Unlock()
		if !hit || cb == nil {
			return nil
		}
		// One-shot semantics: the breakpoint is consumed so the callback's
		// thrown exception does not re-trigger on handler re-entry.
		a.ClearBreakpoint(th, f.Method.ID, f.PC)
		return cb(th, f)
	})
}

func (a *Agent) disableHook(t *vm.Thread) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.hooked[t] {
		return
	}
	delete(a.hooked, t)
	t.SetInstrHook(a.VM.Profile.InstrHook) // restore the profile's base hook
}

// --- stack surgery ---

// ForceEarlyReturn pops popCount frames off a *parked* thread and, when
// hasValue, pushes v onto the newly exposed top frame's operand stack —
// the ForceEarlyReturn<type> analog the home node uses to discard migrated
// frames and deliver the remote return value (§III.A).
func (a *Agent) ForceEarlyReturn(t *vm.Thread, popCount int, v value.Value, hasValue bool) error {
	spin(spinCheap)
	if t.State() != vm.ThreadParked {
		return fmt.Errorf("toolif: thread %d must be parked for ForceEarlyReturn", t.ID)
	}
	if popCount <= 0 || popCount > t.Depth() {
		return fmt.Errorf("toolif: popCount %d out of range (depth %d)", popCount, t.Depth())
	}
	t.Frames = t.Frames[:len(t.Frames)-popCount]
	if hasValue {
		if top := t.Top(); top != nil {
			top.Push(v)
		} else {
			t.Result = v
		}
	}
	return nil
}

// TruncateTo keeps only the bottom keep frames of a parked thread (the
// home node does this after exporting the top segment, keeping the
// residual stack).
func (a *Agent) TruncateTo(t *vm.Thread, keep int) error {
	spin(spinCheap)
	if t.State() != vm.ThreadParked {
		return fmt.Errorf("toolif: thread %d must be parked", t.ID)
	}
	if keep < 0 || keep > t.Depth() {
		return fmt.Errorf("toolif: keep %d out of range (depth %d)", keep, t.Depth())
	}
	t.Frames = t.Frames[:keep]
	return nil
}

// PinFrame marks the frame at depth as non-migratable.
func (a *Agent) PinFrame(t *vm.Thread, depth int) error {
	f, err := a.frameAt(t, depth)
	if err != nil {
		return err
	}
	f.Pinned = true
	return nil
}
