package asm_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/value"
)

func TestBuiltinsPredeclared(t *testing.T) {
	p := asm.NewProgram().MustBuild()
	for _, name := range bytecode.BuiltinClassNames {
		if p.ClassByName(name) < 0 {
			t.Errorf("builtin %q missing", name)
		}
	}
	// Exceptions extend Object.
	npe := p.ClassByName(bytecode.ExNullPointer)
	obj := p.ClassByName(bytecode.ClassObject)
	if !p.InstanceOf(npe, obj) {
		t.Error("NPE should extend Object")
	}
}

func TestForwardReferences(t *testing.T) {
	pb := asm.NewProgram()
	// main calls helper declared later; references class declared later.
	mb := pb.Func("main", true)
	mb.New("Late").Pop()
	mb.Call("helper", 0).RetV()
	pb.Func("helper", true).Int(5).RetV()
	pb.Class("Late", "")
	if _, err := pb.Build(); err != nil {
		t.Fatalf("forward refs should resolve: %v", err)
	}
}

func TestUndefinedReferencesFail(t *testing.T) {
	cases := []func(pb *asm.ProgramBuilder){
		func(pb *asm.ProgramBuilder) { pb.Func("m", false).Jmp("nowhere").Ret() },
		func(pb *asm.ProgramBuilder) { pb.Func("m", true).Call("ghost", 0).RetV() },
		func(pb *asm.ProgramBuilder) { pb.Func("m", false).New("Ghost").Pop().Ret() },
		func(pb *asm.ProgramBuilder) { pb.Func("m", false).CallNat("ghost", 0).Ret() },
		func(pb *asm.ProgramBuilder) {
			pb.Func("m", false).Null().GetF("Object", "ghost").Pop().Ret()
		},
	}
	for i, build := range cases {
		pb := asm.NewProgram()
		build(pb)
		if _, err := pb.Build(); err == nil {
			t.Errorf("case %d: undefined reference should fail", i)
		}
	}
}

func TestDuplicateDetection(t *testing.T) {
	pb := asm.NewProgram()
	c := pb.Class("C", "")
	c.Field("f", value.KindInt)
	c.Field("f", value.KindInt)
	if _, err := pb.Build(); err == nil {
		t.Error("duplicate field should fail")
	}

	pb2 := asm.NewProgram()
	pb2.Func("m", true).Int(1).RetV()
	pb2.Func("m", true).Int(2).RetV()
	if _, err := pb2.Build(); err == nil {
		t.Error("duplicate method should fail")
	}

	pb3 := asm.NewProgram()
	m := pb3.Func("m", false)
	m.Label("l").Label("l").Ret()
	if _, err := pb3.Build(); err == nil {
		t.Error("duplicate label should fail")
	}
}

func TestFieldInheritanceLayout(t *testing.T) {
	pb := asm.NewProgram()
	a := pb.Class("A", "")
	a.Field("x", value.KindInt)
	b := pb.Class("B", "A")
	b.Field("y", value.KindInt)
	mb := pb.Func("main", true)
	mb.New("B").Store("o")
	mb.Load("o").Int(1).PutF("B", "x") // inherited
	mb.Load("o").Int(2).PutF("B", "y")
	mb.Load("o").GetF("B", "x").Load("o").GetF("B", "y").Add().RetV()
	p := pb.MustBuild()
	bID := p.ClassByName("B")
	if len(p.Classes[bID].Fields) != 2 {
		t.Fatalf("B should have 2 flattened fields, got %d", len(p.Classes[bID].Fields))
	}
	// Field x must be slot 0, y slot 1.
	if p.Classes[bID].Fields[0].Name != "x" || p.Classes[bID].Fields[1].Name != "y" {
		t.Errorf("layout: %+v", p.Classes[bID].Fields)
	}
}

func TestSubclassMustFollowSuper(t *testing.T) {
	pb := asm.NewProgram()
	pb.Class("B", "A") // A not yet declared
	pb.Class("A", "")
	if _, err := pb.Build(); err == nil {
		t.Error("super declared after subclass should fail")
	}
}

func TestTSwitchSortsKeys(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true, "x")
	mb.Load("x")
	mb.TSwitch([]int32{9, 2, 5}, []string{"nine", "two", "five"}, "other")
	mb.Label("nine").Int(9).RetV()
	mb.Label("two").Int(2).RetV()
	mb.Label("five").Int(5).RetV()
	mb.Label("other").Int(0).RetV()
	p := pb.MustBuild()
	m := p.Methods[p.MethodByName("main")]
	keys := m.Switches[0].Keys
	if keys[0] != 2 || keys[1] != 5 || keys[2] != 9 {
		t.Errorf("keys not sorted: %v", keys)
	}
}

func TestLocalAllocationByName(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true, "a", "b")
	if mb.Local("a") != 0 || mb.Local("b") != 1 {
		t.Error("args should occupy the first slots")
	}
	s1 := mb.Local("x")
	s2 := mb.Local("x")
	if s1 != s2 {
		t.Error("repeated Local lookups should return the same slot")
	}
	mb.Int(0).RetV()
	p := pb.MustBuild()
	if p.Methods[p.MethodByName("main")].NLocals != 3 {
		t.Errorf("NLocals = %d", p.Methods[p.MethodByName("main")].NLocals)
	}
}

func TestPragmaSurvivesBuild(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Pragma("pin")
	mb.Int(1).RetV()
	p := pb.MustBuild()
	m := p.Methods[p.MethodByName("main")]
	if m.Pragmas == nil || !m.Pragmas["pin"] {
		t.Error("pragma lost")
	}
}

func TestLineAndMSPTables(t *testing.T) {
	pb := asm.NewProgram()
	mb := pb.Func("main", true)
	mb.Line().MSP().Int(1).Store("a")
	mb.Line().MSP().Load("a").RetV()
	p := pb.MustBuild()
	m := p.Methods[p.MethodByName("main")]
	if len(m.Lines) != 2 || len(m.MSPs) != 2 {
		t.Errorf("lines=%d msps=%d", len(m.Lines), len(m.MSPs))
	}
	if !m.IsMSP(0) {
		t.Error("pc 0 should be an MSP")
	}
}

func TestDisassemblyMentionsStructure(t *testing.T) {
	pb := asm.NewProgram()
	c := pb.Class("K", "")
	c.Static("s", value.KindInt)
	mb := pb.Func("main", true)
	mb.Label("try")
	mb.Line().GetS("K", "s").Store("v")
	mb.Line().Load("v").RetV()
	mb.Label("end")
	mb.Label("h").Pop().Int(0).RetV()
	mb.Try("try", "end", "h", bytecode.ExArithmetic)
	p := pb.MustBuild()
	out := bytecode.Disassemble(p, p.Methods[p.MethodByName("main")])
	for _, want := range []string{"gets K.s", "exception table", "ArithmeticException"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
