// Package asm is the programmatic assembler for SVM bytecode. Workloads,
// tests and the class preprocessor build programs through it. The builder
// resolves names (classes, fields, methods, virtual names, natives, labels,
// locals) at Build time, so declarations may appear in any order, and runs
// the verifier so that every built program is well-formed by construction.
package asm

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/value"
)

// ProgramBuilder accumulates classes, methods and natives for one program.
type ProgramBuilder struct {
	classes []*ClassBuilder
	methods []*MethodBuilder
	natives []bytecode.NativeSig
	vnames  []string
	vindex  map[string]int32
	errs    []error
}

// NewProgram returns an empty ProgramBuilder with the builtin classes
// (Object, String, CapturedState and the exception hierarchy) pre-declared.
func NewProgram() *ProgramBuilder {
	pb := &ProgramBuilder{vindex: make(map[string]int32)}
	for _, name := range bytecode.BuiltinClassNames {
		super := ""
		if name != bytecode.ClassObject {
			super = bytecode.ClassObject
		}
		cb := pb.Class(name, super)
		switch name {
		case bytecode.ClassObject, bytecode.ClassString, bytecode.ClassCapturedState:
		default:
			// Exception classes: message string + auxiliary payload.
			cb.Field("message", value.KindRef)
			cb.Field("extra", value.KindInt)
		}
	}
	return pb
}

func (pb *ProgramBuilder) errf(format string, args ...any) {
	pb.errs = append(pb.errs, fmt.Errorf(format, args...))
}

// Class declares a class. superName may be empty (implicitly Object, except
// for Object itself).
func (pb *ProgramBuilder) Class(name, superName string) *ClassBuilder {
	cb := &ClassBuilder{
		pb:        pb,
		id:        int32(len(pb.classes)),
		name:      name,
		superName: superName,
		fieldIdx:  make(map[string]int32),
		staticIdx: make(map[string]int32),
	}
	if superName == "" && name != bytecode.ClassObject {
		cb.superName = bytecode.ClassObject
	}
	pb.classes = append(pb.classes, cb)
	return cb
}

// Native declares a native function callable via CallNat.
func (pb *ProgramBuilder) Native(name string, nargs int, returns bool) *ProgramBuilder {
	pb.natives = append(pb.natives, bytecode.NativeSig{Name: name, NArgs: nargs, ReturnsValue: returns})
	return pb
}

// Func declares a free function (no receiver). args names the argument
// locals in order.
func (pb *ProgramBuilder) Func(name string, returns bool, args ...string) *MethodBuilder {
	return pb.newMethod(nil, name, false, returns, args)
}

func (pb *ProgramBuilder) vnameID(name string) int32 {
	if id, ok := pb.vindex[name]; ok {
		return id
	}
	id := int32(len(pb.vnames))
	pb.vnames = append(pb.vnames, name)
	pb.vindex[name] = id
	return id
}

func (pb *ProgramBuilder) newMethod(cb *ClassBuilder, name string, virtual, returns bool, args []string) *MethodBuilder {
	mb := &MethodBuilder{
		pb:       pb,
		cb:       cb,
		id:       int32(len(pb.methods)),
		name:     name,
		virtual:  virtual,
		returns:  returns,
		localIdx: make(map[string]int32),
		labels:   make(map[string]int32),
	}
	if virtual {
		mb.Local("this")
	}
	for _, a := range args {
		mb.Local(a)
	}
	mb.nargs = len(args)
	if virtual {
		mb.nargs++
	}
	pb.methods = append(pb.methods, mb)
	if cb != nil {
		cb.methods = append(cb.methods, mb)
		if virtual {
			// Instance methods are virtual-dispatch candidates; register
			// the name so CallV sites resolve.
			pb.vnameID(name)
		}
	}
	return mb
}

// ClassBuilder declares fields, statics and methods of one class.
type ClassBuilder struct {
	pb        *ProgramBuilder
	id        int32
	name      string
	superName string
	fields    []bytecode.Field
	statics   []bytecode.Field
	fieldIdx  map[string]int32
	staticIdx map[string]int32
	methods   []*MethodBuilder
}

// Name returns the class name.
func (cb *ClassBuilder) Name() string { return cb.name }

// Field declares an instance field and returns its slot index.
func (cb *ClassBuilder) Field(name string, kind value.Kind) int32 {
	if _, dup := cb.fieldIdx[name]; dup {
		cb.pb.errf("asm: class %s: duplicate field %s", cb.name, name)
	}
	idx := int32(len(cb.fields))
	cb.fields = append(cb.fields, bytecode.Field{Name: name, Kind: kind})
	cb.fieldIdx[name] = idx
	return idx
}

// Static declares a static field and returns its index.
func (cb *ClassBuilder) Static(name string, kind value.Kind) int32 {
	if _, dup := cb.staticIdx[name]; dup {
		cb.pb.errf("asm: class %s: duplicate static %s", cb.name, name)
	}
	idx := int32(len(cb.statics))
	cb.statics = append(cb.statics, bytecode.Field{Name: name, Kind: kind})
	cb.staticIdx[name] = idx
	return idx
}

// Method declares an instance method ("this" is local 0).
func (cb *ClassBuilder) Method(name string, returns bool, args ...string) *MethodBuilder {
	return cb.pb.newMethod(cb, name, true, returns, args)
}

// StaticMethod declares a class-scoped method without a receiver.
func (cb *ClassBuilder) StaticMethod(name string, returns bool, args ...string) *MethodBuilder {
	return cb.pb.newMethod(cb, name, false, returns, args)
}

// fixup records a name reference to patch at Build time.
type fixup struct {
	pc   int32
	kind fixupKind
	name string // target name (label, method, class, native, vname)
	cls  string // class name for field/static fixups
	slot int    // which operand: 0 = A, 1 = B
}

type fixupKind uint8

const (
	fixLabel fixupKind = iota
	fixMethod
	fixClass
	fixField  // instance field: name within cls
	fixStatic // static field: patches A=class, B=field
	fixNative
	fixVName
)

// tryRegion is a pending exception-table entry with label endpoints.
type tryRegion struct {
	fromLbl, toLbl, handlerLbl string
	exClass                    string // empty = catch-all
}

// switchFix is a pending TSwitch table with label targets.
type switchFix struct {
	index      int32
	keys       []int32
	targetLbls []string
	defaultLbl string
}

// MethodBuilder emits instructions for one method.
type MethodBuilder struct {
	pb       *ProgramBuilder
	cb       *ClassBuilder
	id       int32
	name     string
	virtual  bool
	returns  bool
	nargs    int
	code     []bytecode.Instr
	consts   []value.Value
	strings  []string
	localIdx map[string]int32
	nlocals  int
	labels   map[string]int32
	fixups   []fixup
	tries    []tryRegion
	switches []switchFix
	lines    []bytecode.LineEntry
	curLine  int32
	msps     []int32
	pragma   map[string]bool
}

// ID returns the method id the builder was assigned.
func (mb *MethodBuilder) ID() int32 { return mb.id }

// Name returns the method name.
func (mb *MethodBuilder) Name() string { return mb.name }

// Pragma attaches a named marker to the method (consumed by the
// preprocessor, e.g. "nopreprocess" or "pin").
func (mb *MethodBuilder) Pragma(name string) *MethodBuilder {
	if mb.pragma == nil {
		mb.pragma = make(map[string]bool)
	}
	mb.pragma[name] = true
	return mb
}

// Local allocates (or looks up) a named local slot.
func (mb *MethodBuilder) Local(name string) int32 {
	if idx, ok := mb.localIdx[name]; ok {
		return idx
	}
	idx := int32(mb.nlocals)
	mb.localIdx[name] = idx
	mb.nlocals++
	return idx
}

// PC returns the pc the next emitted instruction will have.
func (mb *MethodBuilder) PC() int32 { return int32(len(mb.code)) }

func (mb *MethodBuilder) emit(op bytecode.Op, a, b int32) *MethodBuilder {
	mb.code = append(mb.code, bytecode.Instr{Op: op, A: a, B: b})
	return mb
}

// Line starts a new source line at the current pc. Statement boundaries
// drive the preprocessor's MSP placement and fault-handler scoping.
func (mb *MethodBuilder) Line() *MethodBuilder {
	mb.curLine++
	mb.lines = append(mb.lines, bytecode.LineEntry{PC: mb.PC(), Line: mb.curLine})
	return mb
}

// MSP marks the current pc as a migration-safe point. The verifier will
// reject the program if the operand stack can be non-empty here.
func (mb *MethodBuilder) MSP() *MethodBuilder {
	mb.msps = append(mb.msps, mb.PC())
	return mb
}

// Label binds a name to the current pc.
func (mb *MethodBuilder) Label(name string) *MethodBuilder {
	if _, dup := mb.labels[name]; dup {
		mb.pb.errf("asm: method %s: duplicate label %s", mb.name, name)
	}
	mb.labels[name] = mb.PC()
	return mb
}

// --- constants and locals ---

// Const pushes an arbitrary constant value.
func (mb *MethodBuilder) Const(v value.Value) *MethodBuilder {
	idx := int32(len(mb.consts))
	mb.consts = append(mb.consts, v)
	return mb.emit(bytecode.OpConst, idx, 0)
}

// Int pushes an integer constant (using the compact iconst form when it
// fits in an int32 operand).
func (mb *MethodBuilder) Int(i int64) *MethodBuilder {
	if i == int64(int32(i)) {
		return mb.emit(bytecode.OpIConst, int32(i), 0)
	}
	return mb.Const(value.Int(i))
}

// Float pushes a float constant.
func (mb *MethodBuilder) Float(f float64) *MethodBuilder { return mb.Const(value.Float(f)) }

// Str pushes an interned string object.
func (mb *MethodBuilder) Str(s string) *MethodBuilder {
	idx := int32(len(mb.strings))
	mb.strings = append(mb.strings, s)
	return mb.emit(bytecode.OpSConst, idx, 0)
}

// Null pushes the null reference.
func (mb *MethodBuilder) Null() *MethodBuilder { return mb.emit(bytecode.OpNull, 0, 0) }

// Load pushes the named local.
func (mb *MethodBuilder) Load(name string) *MethodBuilder {
	return mb.emit(bytecode.OpLoad, mb.Local(name), 0)
}

// Store pops into the named local.
func (mb *MethodBuilder) Store(name string) *MethodBuilder {
	return mb.emit(bytecode.OpStore, mb.Local(name), 0)
}

// LoadSlot / StoreSlot address locals by raw slot number.
func (mb *MethodBuilder) LoadSlot(slot int32) *MethodBuilder {
	for int(slot) >= mb.nlocals {
		mb.Local(fmt.Sprintf("$slot%d", mb.nlocals))
	}
	return mb.emit(bytecode.OpLoad, slot, 0)
}

// StoreSlot pops into a raw slot number.
func (mb *MethodBuilder) StoreSlot(slot int32) *MethodBuilder {
	for int(slot) >= mb.nlocals {
		mb.Local(fmt.Sprintf("$slot%d", mb.nlocals))
	}
	return mb.emit(bytecode.OpStore, slot, 0)
}

// --- stack / arithmetic / comparison ---

// Pop discards the top of the operand stack.
func (mb *MethodBuilder) Pop() *MethodBuilder  { return mb.emit(bytecode.OpPop, 0, 0) }
func (mb *MethodBuilder) Dup() *MethodBuilder  { return mb.emit(bytecode.OpDup, 0, 0) }
func (mb *MethodBuilder) Swap() *MethodBuilder { return mb.emit(bytecode.OpSwap, 0, 0) }
func (mb *MethodBuilder) Add() *MethodBuilder  { return mb.emit(bytecode.OpAdd, 0, 0) }
func (mb *MethodBuilder) Sub() *MethodBuilder  { return mb.emit(bytecode.OpSub, 0, 0) }
func (mb *MethodBuilder) Mul() *MethodBuilder  { return mb.emit(bytecode.OpMul, 0, 0) }
func (mb *MethodBuilder) Div() *MethodBuilder  { return mb.emit(bytecode.OpDiv, 0, 0) }
func (mb *MethodBuilder) Mod() *MethodBuilder  { return mb.emit(bytecode.OpMod, 0, 0) }
func (mb *MethodBuilder) Neg() *MethodBuilder  { return mb.emit(bytecode.OpNeg, 0, 0) }
func (mb *MethodBuilder) And() *MethodBuilder  { return mb.emit(bytecode.OpAnd, 0, 0) }
func (mb *MethodBuilder) Or() *MethodBuilder   { return mb.emit(bytecode.OpOr, 0, 0) }
func (mb *MethodBuilder) Xor() *MethodBuilder  { return mb.emit(bytecode.OpXor, 0, 0) }
func (mb *MethodBuilder) Shl() *MethodBuilder  { return mb.emit(bytecode.OpShl, 0, 0) }
func (mb *MethodBuilder) Shr() *MethodBuilder  { return mb.emit(bytecode.OpShr, 0, 0) }
func (mb *MethodBuilder) Not() *MethodBuilder  { return mb.emit(bytecode.OpNot, 0, 0) }
func (mb *MethodBuilder) I2F() *MethodBuilder  { return mb.emit(bytecode.OpI2F, 0, 0) }
func (mb *MethodBuilder) F2I() *MethodBuilder  { return mb.emit(bytecode.OpF2I, 0, 0) }
func (mb *MethodBuilder) Eq() *MethodBuilder   { return mb.emit(bytecode.OpEq, 0, 0) }
func (mb *MethodBuilder) Ne() *MethodBuilder   { return mb.emit(bytecode.OpNe, 0, 0) }
func (mb *MethodBuilder) Lt() *MethodBuilder   { return mb.emit(bytecode.OpLt, 0, 0) }
func (mb *MethodBuilder) Le() *MethodBuilder   { return mb.emit(bytecode.OpLe, 0, 0) }
func (mb *MethodBuilder) Gt() *MethodBuilder   { return mb.emit(bytecode.OpGt, 0, 0) }
func (mb *MethodBuilder) Ge() *MethodBuilder   { return mb.emit(bytecode.OpGe, 0, 0) }

// --- control flow ---

// Jmp emits an unconditional jump to a label.
func (mb *MethodBuilder) Jmp(label string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixLabel, name: label})
	return mb.emit(bytecode.OpJmp, -1, 0)
}

// Jz jumps to label when the popped value is falsy.
func (mb *MethodBuilder) Jz(label string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixLabel, name: label})
	return mb.emit(bytecode.OpJz, -1, 0)
}

// Jnz jumps to label when the popped value is truthy.
func (mb *MethodBuilder) Jnz(label string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixLabel, name: label})
	return mb.emit(bytecode.OpJnz, -1, 0)
}

// TSwitch emits a table switch: keys[i] jumps to targetLabels[i], anything
// else to defaultLabel. Keys need not be pre-sorted.
func (mb *MethodBuilder) TSwitch(keys []int32, targetLabels []string, defaultLabel string) *MethodBuilder {
	if len(keys) != len(targetLabels) {
		mb.pb.errf("asm: method %s: tswitch keys/targets mismatch", mb.name)
		return mb
	}
	idx := int32(len(mb.switches))
	ks := append([]int32(nil), keys...)
	ls := append([]string(nil), targetLabels...)
	sort.Sort(&keyLabelSort{ks, ls})
	mb.switches = append(mb.switches, switchFix{index: idx, keys: ks, targetLbls: ls, defaultLbl: defaultLabel})
	return mb.emit(bytecode.OpTSwitch, idx, 0)
}

type keyLabelSort struct {
	keys []int32
	lbls []string
}

func (s *keyLabelSort) Len() int           { return len(s.keys) }
func (s *keyLabelSort) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keyLabelSort) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.lbls[i], s.lbls[j] = s.lbls[j], s.lbls[i]
}

// --- objects ---

// New allocates an instance of the named class.
func (mb *MethodBuilder) New(className string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixClass, name: className})
	return mb.emit(bytecode.OpNew, -1, 0)
}

// GetF reads field fieldName declared on className (obj on stack).
func (mb *MethodBuilder) GetF(className, fieldName string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixField, name: fieldName, cls: className})
	return mb.emit(bytecode.OpGetF, -1, 0)
}

// PutF writes field fieldName (obj, value on stack).
func (mb *MethodBuilder) PutF(className, fieldName string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixField, name: fieldName, cls: className})
	return mb.emit(bytecode.OpPutF, -1, 0)
}

// GetS reads a static field.
func (mb *MethodBuilder) GetS(className, fieldName string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixStatic, name: fieldName, cls: className})
	return mb.emit(bytecode.OpGetS, -1, -1)
}

// PutS writes a static field.
func (mb *MethodBuilder) PutS(className, fieldName string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixStatic, name: fieldName, cls: className})
	return mb.emit(bytecode.OpPutS, -1, -1)
}

// GetStatus pushes the status word of the object on the stack (used only
// by the status-check DSM baseline).
func (mb *MethodBuilder) GetStatus() *MethodBuilder { return mb.emit(bytecode.OpGetStatus, 0, 0) }

// InstOf tests instance-of the named class.
func (mb *MethodBuilder) InstOf(className string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixClass, name: className})
	return mb.emit(bytecode.OpInstOf, -1, 0)
}

// CheckCast asserts the top of stack is an instance of the named class.
func (mb *MethodBuilder) CheckCast(className string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixClass, name: className})
	return mb.emit(bytecode.OpCheckCast, -1, 0)
}

// --- arrays ---

// NewArr allocates an array; length on stack, element kind fixed.
func (mb *MethodBuilder) NewArr(kind int32) *MethodBuilder {
	return mb.emit(bytecode.OpNewArr, kind, 0)
}

// ALoad pops arr, idx and pushes arr[idx].
func (mb *MethodBuilder) ALoad() *MethodBuilder { return mb.emit(bytecode.OpALoad, 0, 0) }

// AStore pops arr, idx, val and stores arr[idx] = val.
func (mb *MethodBuilder) AStore() *MethodBuilder { return mb.emit(bytecode.OpAStore, 0, 0) }

// ArrLen pops arr and pushes its length.
func (mb *MethodBuilder) ArrLen() *MethodBuilder { return mb.emit(bytecode.OpArrLen, 0, 0) }

// --- calls / returns / exceptions ---

// Call emits a static call to the qualified method name ("Class.method" or
// bare free-function name) with nargs arguments on the stack.
func (mb *MethodBuilder) Call(qualified string, nargs int) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixMethod, name: qualified})
	return mb.emit(bytecode.OpCall, -1, int32(nargs))
}

// CallV emits a virtual call; nargs includes the receiver.
func (mb *MethodBuilder) CallV(vname string, nargs int) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixVName, name: vname})
	return mb.emit(bytecode.OpCallV, -1, int32(nargs))
}

// CallNat emits a native call.
func (mb *MethodBuilder) CallNat(name string, nargs int) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{pc: mb.PC(), kind: fixNative, name: name})
	return mb.emit(bytecode.OpCallNat, -1, int32(nargs))
}

// Ret returns void.
func (mb *MethodBuilder) Ret() *MethodBuilder { return mb.emit(bytecode.OpRet, 0, 0) }

// RetV returns the top of the stack.
func (mb *MethodBuilder) RetV() *MethodBuilder { return mb.emit(bytecode.OpRetV, 0, 0) }

// Throw raises the exception object on the stack.
func (mb *MethodBuilder) Throw() *MethodBuilder { return mb.emit(bytecode.OpThrow, 0, 0) }

// ThrowNew allocates an exception of the named class with a message and
// throws it. It spills through a scratch local rather than using Dup so
// the emitted code stays liftable by the class preprocessor.
func (mb *MethodBuilder) ThrowNew(exClass, message string) *MethodBuilder {
	tmp := "$exc"
	mb.New(exClass).Store(tmp)
	mb.Load(tmp).Str(message).PutF(exClass, "message")
	return mb.Load(tmp).Throw()
}

// Try registers an exception-table entry over [fromLabel, toLabel) jumping
// to handlerLabel for exceptions of exClass (empty = catch all). Entries
// are matched in registration order.
func (mb *MethodBuilder) Try(fromLabel, toLabel, handlerLabel, exClass string) *MethodBuilder {
	mb.tries = append(mb.tries, tryRegion{fromLabel, toLabel, handlerLabel, exClass})
	return mb
}

// Build resolves all references, verifies and returns the program.
func (pb *ProgramBuilder) Build() (*bytecode.Program, error) {
	if len(pb.errs) > 0 {
		return nil, pb.errs[0]
	}
	p := &bytecode.Program{
		Natives: append([]bytecode.NativeSig(nil), pb.natives...),
		VNames:  append([]string(nil), pb.vnames...),
	}

	classID := make(map[string]int32, len(pb.classes))
	for _, cb := range pb.classes {
		classID[cb.name] = cb.id
	}
	// Classes (supers resolved by name). Instance-field layouts are
	// flattened: a subclass's Fields are its superclass's flattened fields
	// followed by its own, so field slot indices are stable across the
	// hierarchy. This requires supers to be declared before subclasses,
	// which holds because builtins are declared first and user classes in
	// source order.
	for _, cb := range pb.classes {
		super := int32(-1)
		if cb.superName != "" {
			sid, ok := classID[cb.superName]
			if !ok {
				return nil, fmt.Errorf("asm: class %s: unknown super %s", cb.name, cb.superName)
			}
			if sid >= cb.id {
				return nil, fmt.Errorf("asm: class %s: super %s must be declared first", cb.name, cb.superName)
			}
			super = sid
		}
		var flat []bytecode.Field
		if super >= 0 {
			flat = append(flat, p.Classes[super].Fields...)
		}
		flat = append(flat, cb.fields...)
		c := &bytecode.Class{
			ID:      cb.id,
			Name:    cb.name,
			Super:   super,
			Fields:  flat,
			Statics: append([]bytecode.Field(nil), cb.statics...),
			Methods: make(map[string]int32, len(cb.methods)),
		}
		for _, mb := range cb.methods {
			if _, dup := c.Methods[mb.name]; dup {
				return nil, fmt.Errorf("asm: class %s: duplicate method %s", cb.name, mb.name)
			}
			c.Methods[mb.name] = mb.id
		}
		p.Classes = append(p.Classes, c)
	}

	methodID := make(map[string]int32, len(pb.methods))
	for _, mb := range pb.methods {
		qn := mb.name
		if mb.cb != nil {
			qn = mb.cb.name + "." + mb.name
		}
		if _, dup := methodID[qn]; dup {
			return nil, fmt.Errorf("asm: duplicate method %s", qn)
		}
		methodID[qn] = mb.id
	}
	nativeID := make(map[string]int32, len(pb.natives))
	for i, n := range pb.natives {
		nativeID[n.Name] = int32(i)
	}
	vnameID := pb.vindex

	// Methods: apply fixups, build side tables.
	for _, mb := range pb.methods {
		m := &bytecode.Method{
			ID:           mb.id,
			ClassID:      -1,
			Name:         mb.name,
			NArgs:        mb.nargs,
			NLocals:      mb.nlocals,
			ReturnsValue: mb.returns,
			Virtual:      mb.virtual,
			Code:         append([]bytecode.Instr(nil), mb.code...),
			Consts:       append([]value.Value(nil), mb.consts...),
			Strings:      append([]string(nil), mb.strings...),
			Lines:        append([]bytecode.LineEntry(nil), mb.lines...),
			MSPs:         append([]int32(nil), mb.msps...),
			Pragmas:      mb.pragma,
		}
		if mb.cb != nil {
			m.ClassID = mb.cb.id
		}
		for _, fx := range mb.fixups {
			ins := &m.Code[fx.pc]
			switch fx.kind {
			case fixLabel:
				pc, ok := mb.labels[fx.name]
				if !ok {
					return nil, fmt.Errorf("asm: method %s: undefined label %s", mb.name, fx.name)
				}
				ins.A = pc
			case fixMethod:
				id, ok := methodID[fx.name]
				if !ok {
					return nil, fmt.Errorf("asm: method %s: unknown method %s", mb.name, fx.name)
				}
				ins.A = id
			case fixClass:
				id, ok := classID[fx.name]
				if !ok {
					return nil, fmt.Errorf("asm: method %s: unknown class %s", mb.name, fx.name)
				}
				ins.A = id
			case fixField:
				cid, ok := classID[fx.cls]
				if !ok {
					return nil, fmt.Errorf("asm: method %s: unknown class %s", mb.name, fx.cls)
				}
				fidx, err := findField(pb, p, cid, fx.name)
				if err != nil {
					return nil, fmt.Errorf("asm: method %s: %w", mb.name, err)
				}
				ins.A = fidx
			case fixStatic:
				cid, ok := classID[fx.cls]
				if !ok {
					return nil, fmt.Errorf("asm: method %s: unknown class %s", mb.name, fx.cls)
				}
				sidx, err := findStatic(p, cid, fx.name)
				if err != nil {
					return nil, fmt.Errorf("asm: method %s: %w", mb.name, err)
				}
				ins.A = cid
				ins.B = sidx
			case fixNative:
				id, ok := nativeID[fx.name]
				if !ok {
					return nil, fmt.Errorf("asm: method %s: unknown native %s", mb.name, fx.name)
				}
				ins.A = id
			case fixVName:
				id, ok := vnameID[fx.name]
				if !ok {
					return nil, fmt.Errorf("asm: method %s: unknown virtual name %s", mb.name, fx.name)
				}
				ins.A = id
			}
		}
		for _, tr := range mb.tries {
			from, ok := mb.labels[tr.fromLbl]
			if !ok {
				return nil, fmt.Errorf("asm: method %s: undefined try label %s", mb.name, tr.fromLbl)
			}
			to, ok := mb.labels[tr.toLbl]
			if !ok {
				return nil, fmt.Errorf("asm: method %s: undefined try label %s", mb.name, tr.toLbl)
			}
			handler, ok := mb.labels[tr.handlerLbl]
			if !ok {
				return nil, fmt.Errorf("asm: method %s: undefined handler label %s", mb.name, tr.handlerLbl)
			}
			exID := int32(-1)
			if tr.exClass != "" {
				id, ok := classID[tr.exClass]
				if !ok {
					return nil, fmt.Errorf("asm: method %s: unknown exception class %s", mb.name, tr.exClass)
				}
				exID = id
			}
			m.Except = append(m.Except, bytecode.ExRange{From: from, To: to, Handler: handler, ClassID: exID})
		}
		for _, sw := range mb.switches {
			tbl := bytecode.SwitchTable{Keys: sw.keys}
			for _, lbl := range sw.targetLbls {
				pc, ok := mb.labels[lbl]
				if !ok {
					return nil, fmt.Errorf("asm: method %s: undefined switch label %s", mb.name, lbl)
				}
				tbl.Targets = append(tbl.Targets, pc)
			}
			def, ok := mb.labels[sw.defaultLbl]
			if !ok {
				return nil, fmt.Errorf("asm: method %s: undefined switch default %s", mb.name, sw.defaultLbl)
			}
			tbl.Default = def
			m.Switches = append(m.Switches, tbl)
		}
		p.Methods = append(p.Methods, m)
	}

	p.BuildIndexes()
	if err := bytecode.Verify(p); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for tests and fixed workloads.
func (pb *ProgramBuilder) MustBuild() *bytecode.Program {
	p, err := pb.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// findField resolves an instance field by name within cid's flattened
// layout. The scan runs back-to-front so a subclass field shadows an
// inherited one of the same name.
func findField(pb *ProgramBuilder, p *bytecode.Program, cid int32, name string) (int32, error) {
	fields := p.Classes[cid].Fields
	for i := len(fields) - 1; i >= 0; i-- {
		if fields[i].Name == name {
			return int32(i), nil
		}
	}
	return -1, fmt.Errorf("unknown field %s.%s", p.Classes[cid].Name, name)
}

func findStatic(p *bytecode.Program, cid int32, name string) (int32, error) {
	for i, f := range p.Classes[cid].Statics {
		if f.Name == name {
			return int32(i), nil
		}
	}
	return -1, fmt.Errorf("unknown static %s.%s", p.Classes[cid].Name, name)
}
