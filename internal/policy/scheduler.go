package policy

import (
	"sort"
	"sync"
	"time"
)

// Scheduler is the cluster-level decision gate: it wraps a Policy with
// failure awareness. Nodes observed crashing (a gossip send or a
// migration RPC failing) are marked failed; the scheduler then (a) hides
// them from the policy's view and (b) vetoes any decision that still
// names one — so even a buggy or stale policy can never route a job onto
// a node the engine knows is gone. MarkAlive reverses a mark when a node
// recovers.
type Scheduler struct {
	policy Policy

	// Gate bounds per-job migration when deciding through DecideJob: the
	// hop budget and the anti-ping-pong cooldown. The zero value selects
	// the package defaults. Set it before the scheduler is shared.
	Gate HopGate

	mu     sync.Mutex
	failed map[int]bool

	// Decisions/Vetoes count verdicts for diagnostics.
	decisions int
	vetoes    int
}

// NewScheduler wraps p. A nil policy never migrates (steal-only setups).
func NewScheduler(p Policy) *Scheduler {
	if p == nil {
		p = Never{}
	}
	return &Scheduler{policy: p, failed: make(map[int]bool)}
}

// Policy returns the wrapped policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// MarkFailed records that node is unusable as a migration destination.
func (s *Scheduler) MarkFailed(node int) {
	s.mu.Lock()
	s.failed[node] = true
	s.mu.Unlock()
}

// MarkAlive clears a failure mark (node recovered).
func (s *Scheduler) MarkAlive(node int) {
	s.mu.Lock()
	delete(s.failed, node)
	s.mu.Unlock()
}

// Failed reports whether node is currently marked failed.
func (s *Scheduler) Failed(node int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed[node]
}

// FailedNodes returns the currently marked nodes.
func (s *Scheduler) FailedNodes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.failed))
	for n := range s.failed {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Decisions returns how many Decide calls ran and how many verdicts were
// vetoed for naming a failed destination.
func (s *Scheduler) Decisions() (total, vetoed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decisions, s.vetoes
}

// Decide filters failed nodes out of the view, consults the policy, and
// vetoes any verdict that targets a failed node anyway.
func (s *Scheduler) Decide(v View) Decision {
	return s.decide(v, nil, time.Time{})
}

// DecideJob is Decide with the per-job migration trace applied: peers the
// hop gate forbids (the job left them inside the cooldown window) are
// hidden from the policy, a job at its hop budget never migrates at all,
// and — like the failure marks — any verdict that slips through to a
// gated destination is vetoed. This is the entry point the balancer uses
// per running job; Decide remains for trace-less callers.
func (s *Scheduler) DecideJob(v View, tr Trace, now time.Time) Decision {
	return s.decide(v, &tr, now)
}

func (s *Scheduler) decide(v View, tr *Trace, now time.Time) Decision {
	if tr != nil && !s.Gate.Allow(Trace{Hops: tr.Hops}, -1, now) {
		// Hop budget exhausted: no destination can be legal (the probe
		// uses an empty visit set, so only the budget can refuse).
		s.mu.Lock()
		s.decisions++
		s.mu.Unlock()
		return Stay
	}
	s.mu.Lock()
	s.decisions++
	if len(v.Peers) > 0 {
		alive := make([]Signals, 0, len(v.Peers))
		for _, p := range v.Peers {
			if s.failed[p.Node] {
				continue
			}
			if tr != nil && !s.Gate.Allow(*tr, p.Node, now) {
				continue
			}
			alive = append(alive, p)
		}
		v.Peers = alive
	}
	s.mu.Unlock()

	d := s.policy.Decide(v)

	s.mu.Lock()
	defer s.mu.Unlock()
	if d.Migrate && (s.failed[d.Dest] || (tr != nil && !s.Gate.Allow(*tr, d.Dest, now))) {
		s.vetoes++
		return Stay
	}
	return d
}
