// Package policy decides *when* and *where* a running job should migrate
// — the adaptive half of Stack-on-Demand. The paper (§II.B) pitches
// elastic computing: "execution stacks migrate on demand so load can
// spill from weak devices to strong nodes"; the seed runtime only offered
// hand-triggered migrations. This package supplies the decision layer:
// nodes publish cheap load Signals (runnable threads, interpreter step
// rate, object-fault locality), a Policy turns one node's View of the
// cluster into migrate/stay verdicts, and a Scheduler wraps any policy
// with failure awareness so no job is ever routed to a node the engine
// has marked crashed.
//
// The package is deliberately free of runtime dependencies: the SOD
// execution engine (internal/sodee) feeds it signals and executes its
// decisions, and tests drive it with synthetic views.
package policy

import (
	"sort"
	"sync"
	"time"
)

// Signals is one node's published load report — the quantities a node can
// sample in O(1) without stopping its threads.
type Signals struct {
	// Node is the reporting node's id.
	Node int
	// Runnable is the node's registered thread count: running, queued for
	// a modeled core, or parked. It is the node's demand.
	Runnable int
	// Cores is the node's modeled core count (0 = unlimited).
	Cores int
	// Speed is the node's relative per-core execution speed (1.0 = the
	// cluster's reference node; a throttled device reports < 1).
	Speed float64
	// StepRate is the node's recent interpreter throughput in
	// instructions per second, summed over its threads.
	StepRate float64
	// Faults counts the node's remote object fetches by owner node since
	// startup — the fault-locality signal: a node whose faults concentrate
	// on one peer is computing over data mastered there.
	Faults map[int]int64
}

// coreCount normalizes Cores for throughput math (0 = unlimited models a
// machine wide enough that threads never queue).
func (s Signals) coreCount(forThreads int) float64 {
	if s.Cores <= 0 {
		return float64(forThreads)
	}
	return float64(s.Cores)
}

// speed normalizes Speed so an unset hint means the reference speed.
func (s Signals) speed() float64 {
	if s.Speed <= 0 {
		return 1
	}
	return s.Speed
}

// PerJobThroughput estimates the execution speed one more-or-less average
// job enjoys on this node with extra additional threads present: cores
// are shared evenly among runnable threads.
func (s Signals) PerJobThroughput(extra int) float64 {
	threads := s.Runnable + extra
	if threads <= 0 {
		threads = 1
	}
	cores := s.coreCount(threads)
	if cores > float64(threads) {
		cores = float64(threads)
	}
	return s.speed() * cores / float64(threads)
}

// View is what a policy sees when deciding the fate of one job: the
// signals of the node the job currently runs on, the latest gossiped
// reports from candidate destinations, and the measured round-trip time
// to each. The Scheduler removes failed nodes before the policy looks.
type View struct {
	Local Signals
	Peers []Signals
	RTT   map[int]time.Duration
}

// Decision is a policy verdict for one job.
type Decision struct {
	// Migrate is false for "stay": Dest is then meaningless.
	Migrate bool
	// Dest is the chosen destination node.
	Dest int
	// Reason is a short diagnostic ("overloaded", "locality", ...).
	Reason string
}

// Stay is the null decision.
var Stay = Decision{}

// Policy turns a cluster view into a migrate/stay verdict for one job.
// Implementations must be deterministic in the view (RoundRobin is
// deterministic in view sequence) so decisions are testable.
type Policy interface {
	Name() string
	Decide(v View) Decision
}

// --- threshold policy ---

// Threshold migrates when the local node is oversubscribed and some peer
// is enough less loaded: the classic watermark load balancer. Zero values
// select defaults tuned for "weak node with a burst, idle strong peers".
type Threshold struct {
	// HighWater: stay while Runnable <= HighWater (default 1 — a node
	// running a single job is never "overloaded").
	HighWater int
	// Margin: the destination must have at least this many fewer runnable
	// threads than here (default 2, so two nodes never ping-pong a job
	// whose move would merely swap their loads).
	Margin int
}

func (p Threshold) Name() string { return "threshold" }

func (p Threshold) highWater() int {
	if p.HighWater <= 0 {
		return 1
	}
	return p.HighWater
}

func (p Threshold) margin() int {
	if p.Margin <= 0 {
		return 2
	}
	return p.Margin
}

// Decide picks the least-loaded peer (ties broken toward the lowest node
// id, so verdicts are deterministic) when the local node is over its
// high-water mark by at least the margin.
func (p Threshold) Decide(v View) Decision {
	if v.Local.Runnable <= p.highWater() {
		return Stay
	}
	best, ok := leastLoaded(v.Peers)
	if !ok {
		return Stay
	}
	if v.Local.Runnable-best.Runnable < p.margin() {
		return Stay
	}
	return Decision{Migrate: true, Dest: best.Node, Reason: "overloaded"}
}

// leastLoaded returns the peer with the fewest runnable threads, lowest
// node id winning ties.
func leastLoaded(peers []Signals) (Signals, bool) {
	var best Signals
	found := false
	for _, p := range peers {
		if !found || p.Runnable < best.Runnable ||
			(p.Runnable == best.Runnable && p.Node < best.Node) {
			best = p
			found = true
		}
	}
	return best, found
}

// --- cost-model policy ---

// CostModel scores every peer by the throughput a job would gain moving
// there, plus a bonus when the job's object faults say its data is
// mastered at that peer, minus a wire penalty proportional to the link
// RTT; it migrates to the best peer when the net score clears MinGain.
type CostModel struct {
	// MinGain is the minimum net score worth a migration (default 0.25:
	// a move must promise at least a quarter of a reference core).
	MinGain float64
	// LocalityWeight scales the fault-locality bonus (default 0.5). The
	// bonus is the fraction of all local faults owed to the candidate.
	LocalityWeight float64
	// RTTPenalty is score subtracted per millisecond of round-trip time
	// (default 0.05): distant nodes must promise more.
	RTTPenalty float64
}

func (p CostModel) Name() string { return "cost-model" }

func (p CostModel) minGain() float64 {
	if p.MinGain == 0 {
		return 0.25
	}
	return p.MinGain
}

func (p CostModel) localityWeight() float64 {
	if p.LocalityWeight == 0 {
		return 0.5
	}
	return p.LocalityWeight
}

func (p CostModel) rttPenalty() float64 {
	if p.RTTPenalty == 0 {
		return 0.05
	}
	return p.RTTPenalty
}

// Decide scores peers deterministically (ties toward the lowest node id).
func (p CostModel) Decide(v View) Decision {
	localShare := v.Local.PerJobThroughput(0)

	var totalFaults int64
	for _, c := range v.Local.Faults {
		totalFaults += c
	}

	best := Stay
	bestScore := 0.0
	for _, peer := range v.Peers {
		// Throughput gain: what the job gets there (as the +1th thread)
		// versus what it gets here.
		score := peer.PerJobThroughput(1) - localShare
		// Locality: faults already flowing to this peer mean the data
		// lives there and would stop crossing the wire.
		if totalFaults > 0 {
			score += p.localityWeight() * float64(v.Local.Faults[peer.Node]) / float64(totalFaults)
		}
		// Wire cost: per-millisecond penalty on the measured RTT.
		score -= p.rttPenalty() * float64(v.RTT[peer.Node]) / float64(time.Millisecond)

		if score > bestScore || (score == bestScore && best.Migrate && peer.Node < best.Dest) {
			best = Decision{Migrate: true, Dest: peer.Node, Reason: "cost-model"}
			bestScore = score
		}
	}
	if !best.Migrate || bestScore < p.minGain() {
		return Stay
	}
	return best
}

// --- round-robin baseline ---

// RoundRobin always migrates, rotating through peers in node-id order —
// the locality- and load-blind baseline the adaptive policies are
// measured against.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

func (p *RoundRobin) Name() string { return "round-robin" }

// Decide returns the next peer in rotation (peers sorted by node id).
func (p *RoundRobin) Decide(v View) Decision {
	if len(v.Peers) == 0 {
		return Stay
	}
	ids := make([]int, 0, len(v.Peers))
	for _, s := range v.Peers {
		ids = append(ids, s.Node)
	}
	sort.Ints(ids)
	p.mu.Lock()
	dest := ids[p.next%len(ids)]
	p.next++
	p.mu.Unlock()
	return Decision{Migrate: true, Dest: dest, Reason: "round-robin"}
}
