package policy

import (
	"math/rand"
	"testing"
	"time"
)

func TestStealShouldSteal(t *testing.T) {
	cases := []struct {
		name       string
		pol        Steal
		view       View
		wantVictim int
		wantOK     bool
	}{
		{
			name: "idle node robs the most loaded peer",
			pol:  Steal{},
			view: View{Local: sig(1, 0, 1),
				Peers: []Signals{sig(2, 3, 1), sig(3, 5, 1)}},
			wantVictim: 3, wantOK: true,
		},
		{
			name: "busy node does not steal",
			pol:  Steal{},
			view: View{Local: sig(1, 2, 1),
				Peers: []Signals{sig(2, 9, 1)}},
		},
		{
			name: "single-job peers are never victims",
			pol:  Steal{},
			view: View{Local: sig(1, 0, 1),
				Peers: []Signals{sig(2, 1, 1), sig(3, 1, 1)}},
		},
		{
			name: "margin refuses a swap-grade steal",
			pol:  Steal{Margin: 3},
			view: View{Local: sig(1, 0, 1),
				Peers: []Signals{sig(2, 2, 1)}},
		},
		{
			name: "load tie breaks to the lowest node id",
			pol:  Steal{},
			view: View{Local: sig(1, 0, 1),
				Peers: []Signals{sig(4, 4, 1), sig(2, 4, 1), sig(3, 4, 1)}},
			wantVictim: 2, wantOK: true,
		},
		{
			name: "no peers means no steal",
			pol:  Steal{},
			view: View{Local: sig(1, 0, 1)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			victim, ok := tc.pol.ShouldSteal(tc.view)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if ok && victim != tc.wantVictim {
				t.Fatalf("victim = %d, want %d", victim, tc.wantVictim)
			}
		})
	}
}

func TestStealGrantMirrorsMargins(t *testing.T) {
	p := Steal{}
	if p.Grant(sig(1, 1, 1), 0) {
		t.Error("a single-job node surrendered its only job")
	}
	if p.Grant(sig(1, 3, 1), 2) {
		t.Error("granted inside the margin")
	}
	if !p.Grant(sig(1, 4, 1), 0) {
		t.Error("a loaded node refused an idle thief")
	}
}

func TestHopGateDefaults(t *testing.T) {
	now := time.Now()
	g := HopGate{}
	if !g.Allow(Trace{Hops: DefaultHopBudget - 1}, 2, now) {
		t.Error("gate refused a job under the default budget")
	}
	if g.Allow(Trace{Hops: DefaultHopBudget}, 2, now) {
		t.Error("gate allowed a job at the default budget")
	}
	if g.Allow(Trace{Visited: map[int]time.Time{2: now.Add(-DefaultCooldown / 2)}}, 2, now) {
		t.Error("gate allowed a revisit inside the default cooldown")
	}
	if !g.Allow(Trace{Visited: map[int]time.Time{2: now.Add(-2 * DefaultCooldown)}}, 2, now) {
		t.Error("gate refused a revisit past the cooldown")
	}
	if !(HopGate{Budget: -1}).Allow(Trace{Hops: 1000}, 2, now) {
		t.Error("negative budget should be unlimited")
	}
	if !(HopGate{Cooldown: -1}).Allow(Trace{Visited: map[int]time.Time{2: now}}, 2, now) {
		t.Error("negative cooldown should disable the quarantine")
	}
}

func TestPickStealCandidatePrefersFewestHops(t *testing.T) {
	now := time.Now()
	gate := HopGate{Budget: 3, Cooldown: time.Second}
	jobs := []JobInfo{
		{ID: 9, Trace: Trace{Hops: 2}},
		{ID: 4, Trace: Trace{Hops: 0}},
		{ID: 7, Trace: Trace{Hops: 0}},
	}
	if id, ok := PickStealCandidate(jobs, 5, gate, now); !ok || id != 4 {
		t.Fatalf("candidate = %d/%v, want 4", id, ok)
	}
	// The thief is inside job 4's cooldown: job 7 is next in line.
	jobs[1].Trace.Visited = map[int]time.Time{5: now.Add(-time.Millisecond)}
	if id, ok := PickStealCandidate(jobs, 5, gate, now); !ok || id != 7 {
		t.Fatalf("candidate = %d/%v, want 7", id, ok)
	}
	// Budget exhausts every job: no candidate.
	tight := HopGate{Budget: 1, Cooldown: time.Second}
	over := []JobInfo{{ID: 1, Trace: Trace{Hops: 1}}, {ID: 2, Trace: Trace{Hops: 2}}}
	if _, ok := PickStealCandidate(over, 5, tight, now); ok {
		t.Fatal("picked a job past its hop budget")
	}
}

// TestHopGatePropertyNeverOverBudgetNorInCooldown is the property test:
// under any sequence of load views — any policy, any failure marks, any
// clock advance — a job routed through Scheduler.DecideJob never exceeds
// its hop budget and never lands on a node it left within the cooldown
// window. The test replays each verdict into the job's trace exactly as
// the runtime does (hop++, mark the node it left) and asserts the
// invariants on every migration the scheduler emits.
func TestHopGatePropertyNeverOverBudgetNorInCooldown(t *testing.T) {
	rng := rand.New(rand.NewSource(20100913)) // ICPP 2010, San Diego
	policies := func() []Policy {
		return []Policy{
			Threshold{},
			Threshold{HighWater: 2, Margin: 1},
			CostModel{MinGain: 0.01},
			&RoundRobin{},
			alwaysDest{dest: 3},
			Never{},
		}
	}
	for iter := 0; iter < 1500; iter++ {
		for _, p := range policies() {
			budget := 1 + rng.Intn(5)
			cooldown := time.Duration(1+rng.Intn(200)) * time.Millisecond
			s := NewScheduler(p)
			s.Gate = HopGate{Budget: budget, Cooldown: cooldown}

			nodes := 2 + rng.Intn(5)
			cur := 1 // job starts at node 1
			trace := Trace{Visited: map[int]time.Time{}}
			now := time.Unix(0, rng.Int63n(1<<40))

			for round := 0; round < 12; round++ {
				now = now.Add(time.Duration(rng.Intn(60)) * time.Millisecond)
				v := View{
					Local: Signals{Node: cur, Runnable: rng.Intn(8), Cores: 1, Speed: 1},
					RTT:   map[int]time.Duration{},
				}
				for id := 1; id <= nodes; id++ {
					if id == cur {
						continue
					}
					v.Peers = append(v.Peers, Signals{
						Node: id, Runnable: rng.Intn(8), Cores: 1 + rng.Intn(2), Speed: 0.2 + rng.Float64(),
					})
					v.RTT[id] = time.Duration(rng.Intn(3)) * time.Millisecond
					if rng.Intn(6) == 0 {
						s.MarkFailed(id)
					} else if rng.Intn(6) == 0 {
						s.MarkAlive(id)
					}
				}
				d := s.DecideJob(v, trace, now)
				if !d.Migrate {
					continue
				}
				if trace.Hops >= budget {
					t.Fatalf("iter %d policy %s: migrated on hop %d with budget %d",
						iter, p.Name(), trace.Hops+1, budget)
				}
				if left, ok := trace.Visited[d.Dest]; ok && now.Sub(left) < cooldown {
					t.Fatalf("iter %d policy %s: revisited node %d %v after leaving (cooldown %v)",
						iter, p.Name(), d.Dest, now.Sub(left), cooldown)
				}
				// Replay the move into the trace as the runtime does.
				trace.Hops++
				trace.Visited[cur] = now
				cur = d.Dest
			}
		}
	}
}
