package policy

import (
	"sort"
	"time"
)

// This file is the pull half of the decision layer. The push policies
// (Threshold, CostModel, ...) let a *loaded* node decide to shed work;
// work stealing inverts the initiative: an *idle* node picks a loaded
// victim and asks it for a job. Both halves share the HopGate, which
// bounds how far any one job can be shuffled — a hop budget so a job
// cannot drift forever, and a cooldown so two nodes cannot ping-pong it.

// Defaults for the hop gate. The budget counts migrations over a job's
// lifetime (a first offload is hop 1); the cooldown is how long a job
// must stay away from a node it just left.
const (
	DefaultHopBudget = 4
	DefaultCooldown  = 250 * time.Millisecond
)

// Trace is one job's migration history as the decision layer sees it.
type Trace struct {
	// Hops already taken (0 for a job still on its origin node).
	Hops int
	// Visited maps node id → when the job last *left* that node.
	Visited map[int]time.Time
}

// HopGate enforces the multi-hop limits. The zero value selects defaults.
type HopGate struct {
	// Budget is the lifetime migration cap per job (0 = DefaultHopBudget;
	// negative = unlimited).
	Budget int
	// Cooldown is the revisit quarantine (0 = DefaultCooldown; negative =
	// none).
	Cooldown time.Duration
}

func (g HopGate) budget() int {
	if g.Budget == 0 {
		return DefaultHopBudget
	}
	return g.Budget
}

func (g HopGate) cooldown() time.Duration {
	if g.Cooldown == 0 {
		return DefaultCooldown
	}
	return g.Cooldown
}

// Allow reports whether moving a job with trace tr to dest at time now
// respects both the hop budget and the revisit cooldown.
func (g HopGate) Allow(tr Trace, dest int, now time.Time) bool {
	if b := g.budget(); b >= 0 && tr.Hops >= b {
		return false
	}
	if cd := g.cooldown(); cd > 0 {
		if left, ok := tr.Visited[dest]; ok && now.Sub(left) < cd {
			return false
		}
	}
	return true
}

// --- the steal policy ---

// Steal decides both sides of a work-stealing exchange: when an idle node
// should go hunting (ShouldSteal) and when a loaded node should surrender
// a job to a requester (Grant). Zero values select defaults matching the
// Threshold push policy, so the two halves agree on what "loaded" means.
type Steal struct {
	// IdleMax: a node steals only while its runnable count is at or below
	// this (default 0 — only truly idle nodes pull).
	IdleMax int
	// VictimWater: a victim must have more than this many runnable threads
	// to be worth robbing, and to agree to be robbed (default 1, matching
	// Threshold.HighWater: a node running a single job is never a victim).
	VictimWater int
	// Margin: the victim must have at least this many more runnable
	// threads than the thief (default 2, the anti-swap margin).
	Margin int
}

func (p Steal) idleMax() int { return p.IdleMax }

func (p Steal) victimWater() int {
	if p.VictimWater <= 0 {
		return 1
	}
	return p.VictimWater
}

func (p Steal) margin() int {
	if p.Margin <= 0 {
		return 2
	}
	return p.Margin
}

// ShouldSteal is the thief side: with the local node idle, it picks the
// most loaded peer worth robbing (ties toward the lowest node id, so
// verdicts are deterministic). The view's peers must already be filtered
// for liveness by the caller.
func (p Steal) ShouldSteal(v View) (victim int, ok bool) {
	if v.Local.Runnable > p.idleMax() {
		return 0, false
	}
	best := Signals{Node: -1}
	for _, peer := range v.Peers {
		if peer.Runnable <= p.victimWater() || peer.Runnable-v.Local.Runnable < p.margin() {
			continue
		}
		if best.Node < 0 || peer.Runnable > best.Runnable ||
			(peer.Runnable == best.Runnable && peer.Node < best.Node) {
			best = peer
		}
	}
	if best.Node < 0 {
		return 0, false
	}
	return best.Node, true
}

// Grant is the victim side: should this node, at the given load, give one
// job to a thief reporting thiefRunnable? It mirrors ShouldSteal so a
// stale thief view cannot talk a lightly loaded node out of its last jobs.
func (p Steal) Grant(local Signals, thiefRunnable int) bool {
	return local.Runnable > p.victimWater() && local.Runnable-thiefRunnable >= p.margin()
}

// JobInfo is what victim selection knows about one migratable job.
type JobInfo struct {
	ID    uint64
	Trace Trace
}

// PickStealCandidate chooses which running job a victim surrenders to the
// thief: among jobs the gate allows to move there, the one with the
// fewest hops wins (prefer jobs that have not bounced around), lowest id
// breaking ties. Returns false when no job is eligible.
func PickStealCandidate(jobs []JobInfo, thief int, gate HopGate, now time.Time) (uint64, bool) {
	ranked := append([]JobInfo(nil), jobs...) // rank a copy; the caller's order is not ours to change
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Trace.Hops != ranked[j].Trace.Hops {
			return ranked[i].Trace.Hops < ranked[j].Trace.Hops
		}
		return ranked[i].ID < ranked[j].ID
	})
	for _, j := range ranked {
		if gate.Allow(j.Trace, thief, now) {
			return j.ID, true
		}
	}
	return 0, false
}

// --- the null policy ---

// Never is the policy that never pushes: useful for steal-only balancers
// (pull is the only migration initiative) and as an explicit off switch.
type Never struct{}

func (Never) Name() string         { return "never" }
func (Never) Decide(View) Decision { return Stay }
