package policy

import (
	"math/rand"
	"testing"
	"time"
)

func sig(node, runnable, cores int) Signals {
	return Signals{Node: node, Runnable: runnable, Cores: cores, Speed: 1}
}

func TestThresholdDecisions(t *testing.T) {
	cases := []struct {
		name     string
		policy   Threshold
		view     View
		wantMove bool
		wantDest int
	}{
		{
			name:   "idle node stays",
			policy: Threshold{},
			view: View{Local: sig(1, 1, 1),
				Peers: []Signals{sig(2, 0, 1)}},
		},
		{
			name:   "overloaded spills to idle peer",
			policy: Threshold{},
			view: View{Local: sig(1, 4, 1),
				Peers: []Signals{sig(2, 0, 1), sig(3, 2, 1)}},
			wantMove: true, wantDest: 2,
		},
		{
			name:   "least-loaded peer wins",
			policy: Threshold{},
			view: View{Local: sig(1, 5, 1),
				Peers: []Signals{sig(2, 3, 1), sig(3, 1, 1)}},
			wantMove: true, wantDest: 3,
		},
		{
			name:   "tie broken to lowest node id",
			policy: Threshold{},
			view: View{Local: sig(1, 5, 1),
				Peers: []Signals{sig(4, 0, 1), sig(2, 0, 1), sig(3, 0, 1)}},
			wantMove: true, wantDest: 2,
		},
		{
			name:   "margin prevents ping-pong",
			policy: Threshold{HighWater: 1, Margin: 2},
			view: View{Local: sig(1, 2, 1),
				Peers: []Signals{sig(2, 1, 1)}},
		},
		{
			name:   "custom high water holds a bigger burst",
			policy: Threshold{HighWater: 4, Margin: 2},
			view: View{Local: sig(1, 4, 1),
				Peers: []Signals{sig(2, 0, 1)}},
		},
		{
			name:   "no peers means stay",
			policy: Threshold{},
			view:   View{Local: sig(1, 9, 1)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.policy.Decide(tc.view)
			if d.Migrate != tc.wantMove {
				t.Fatalf("Migrate = %v, want %v (%+v)", d.Migrate, tc.wantMove, d)
			}
			if d.Migrate && d.Dest != tc.wantDest {
				t.Fatalf("Dest = %d, want %d", d.Dest, tc.wantDest)
			}
		})
	}
}

func TestCostModelDecisions(t *testing.T) {
	ms := func(d time.Duration) map[int]time.Duration { return map[int]time.Duration{2: d} }
	cases := []struct {
		name     string
		policy   CostModel
		view     View
		wantMove bool
		wantDest int
	}{
		{
			name:   "idle peer with big throughput gain attracts",
			policy: CostModel{},
			view: View{
				// 4 jobs share 1 core here (share 0.25); peer would give
				// this job a whole core as its only thread.
				Local: sig(1, 4, 1),
				Peers: []Signals{sig(2, 0, 1)},
				RTT:   ms(0),
			},
			wantMove: true, wantDest: 2,
		},
		{
			name:   "gain below MinGain stays",
			policy: CostModel{MinGain: 0.9},
			view: View{
				Local: sig(1, 2, 1), // share 0.5; peer offers 1.0 → gain 0.5 < 0.9
				Peers: []Signals{sig(2, 0, 1)},
				RTT:   ms(0),
			},
		},
		{
			name:   "slow peer loses to fast peer",
			policy: CostModel{},
			view: View{
				Local: sig(1, 4, 1),
				Peers: []Signals{
					{Node: 2, Runnable: 0, Cores: 1, Speed: 0.1},
					{Node: 3, Runnable: 0, Cores: 1, Speed: 1.0},
				},
			},
			wantMove: true, wantDest: 3,
		},
		{
			name:   "fault locality picks the data's home among equals",
			policy: CostModel{LocalityWeight: 1},
			view: View{
				Local: Signals{Node: 1, Runnable: 4, Cores: 1, Speed: 1,
					Faults: map[int]int64{3: 90, 2: 10}},
				Peers: []Signals{sig(2, 0, 1), sig(3, 0, 1)},
			},
			wantMove: true, wantDest: 3,
		},
		{
			name: "heavy RTT penalty keeps the job home",
			// 100 ms RTT at 0.05/ms = 5.0 penalty; max gain is < 1.
			policy: CostModel{},
			view: View{
				Local: sig(1, 4, 1),
				Peers: []Signals{sig(2, 0, 1)},
				RTT:   ms(100 * time.Millisecond),
			},
		},
		{
			name:   "single busy cluster stays put",
			policy: CostModel{},
			view: View{
				Local: sig(1, 2, 2), // share 1.0 already
				Peers: []Signals{sig(2, 2, 2)},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.policy.Decide(tc.view)
			if d.Migrate != tc.wantMove {
				t.Fatalf("Migrate = %v, want %v (%+v)", d.Migrate, tc.wantMove, d)
			}
			if d.Migrate && d.Dest != tc.wantDest {
				t.Fatalf("Dest = %d, want %d", d.Dest, tc.wantDest)
			}
		})
	}
}

func TestRoundRobinRotates(t *testing.T) {
	p := &RoundRobin{}
	v := View{Local: sig(1, 1, 1), Peers: []Signals{sig(3, 0, 1), sig(2, 5, 1)}}
	var got []int
	for i := 0; i < 5; i++ {
		d := p.Decide(v)
		if !d.Migrate {
			t.Fatal("round-robin always migrates when peers exist")
		}
		got = append(got, d.Dest)
	}
	want := []int{2, 3, 2, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
	if d := p.Decide(View{Local: sig(1, 1, 1)}); d.Migrate {
		t.Fatal("no peers must mean stay")
	}
}

// alwaysDest is a deliberately misbehaving policy that ignores the view
// and names a fixed destination — the scheduler must still veto it when
// that node is failed.
type alwaysDest struct{ dest int }

func (p alwaysDest) Name() string         { return "always" }
func (p alwaysDest) Decide(View) Decision { return Decision{Migrate: true, Dest: p.dest} }

func TestSchedulerVetoesFailedDest(t *testing.T) {
	s := NewScheduler(alwaysDest{dest: 7})
	v := View{Local: sig(1, 5, 1), Peers: []Signals{sig(7, 0, 1)}}
	if d := s.Decide(v); !d.Migrate || d.Dest != 7 {
		t.Fatalf("before failure: %+v", d)
	}
	s.MarkFailed(7)
	if d := s.Decide(v); d.Migrate {
		t.Fatalf("scheduler let a job through to a failed node: %+v", d)
	}
	s.MarkAlive(7)
	if d := s.Decide(v); !d.Migrate || d.Dest != 7 {
		t.Fatalf("after recovery: %+v", d)
	}
}

// TestSchedulerNeverPicksFailedNode is the property test: across random
// cluster shapes, load vectors and failure sets, no policy behind the
// scheduler ever produces a migration onto a failed node.
func TestSchedulerNeverPicksFailedNode(t *testing.T) {
	rng := rand.New(rand.NewSource(20100713)) // the paper's conference year/date
	policies := func() []Policy {
		return []Policy{
			Threshold{},
			Threshold{HighWater: 3, Margin: 1},
			CostModel{},
			CostModel{MinGain: 0.01, LocalityWeight: 2},
			&RoundRobin{},
			alwaysDest{dest: 2},
		}
	}
	for iter := 0; iter < 2000; iter++ {
		for _, p := range policies() {
			s := NewScheduler(p)
			nPeers := 1 + rng.Intn(5)
			v := View{
				Local: Signals{Node: 1, Runnable: rng.Intn(10), Cores: 1 + rng.Intn(4), Speed: 0.1 + rng.Float64()},
				RTT:   map[int]time.Duration{},
			}
			failed := map[int]bool{}
			for i := 0; i < nPeers; i++ {
				id := 2 + i
				v.Peers = append(v.Peers, Signals{
					Node: id, Runnable: rng.Intn(10), Cores: 1 + rng.Intn(4), Speed: 0.1 + rng.Float64(),
					Faults: map[int]int64{id: rng.Int63n(100)},
				})
				v.RTT[id] = time.Duration(rng.Intn(3)) * time.Millisecond
				if rng.Intn(2) == 0 {
					failed[id] = true
					s.MarkFailed(id)
				}
			}
			for round := 0; round < 4; round++ {
				d := s.Decide(v)
				if d.Migrate && failed[d.Dest] {
					t.Fatalf("iter %d policy %s: migrated to failed node %d", iter, p.Name(), d.Dest)
				}
			}
		}
	}
}
