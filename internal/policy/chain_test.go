package policy

import (
	"math/rand"
	"testing"
	"time"
)

func chainView(local Signals, peers []Signals, frames []FrameSignal, tr Trace) ChainView {
	return ChainView{View: View{Local: local, Peers: peers, RTT: map[int]time.Duration{}}, Frames: frames, Trace: tr}
}

func flatFrames(n int) []FrameSignal {
	out := make([]FrameSignal, n)
	for i := range out {
		out[i] = FrameSignal{MethodID: int32(i), Instrs: 1000}
	}
	return out
}

func TestChainPlannerSplitsAcrossBestPeers(t *testing.T) {
	p := ChainPlanner{}
	v := chainView(sig(1, 3, 1), []Signals{sig(2, 0, 1), sig(3, 0, 1)}, flatFrames(3), Trace{})
	plan, ok := p.Plan(v)
	if !ok {
		t.Fatal("no plan for an overloaded node with two idle peers")
	}
	if len(plan.Segments) != 2 {
		t.Fatalf("segments = %d, want 2 (one per usable peer)", len(plan.Segments))
	}
	total := 0
	for _, s := range plan.Segments {
		if s.Frames < 1 {
			t.Fatalf("empty segment in %+v", plan)
		}
		total += s.Frames
	}
	if total != 3 {
		t.Fatalf("plan covers %d frames, want 3: %+v", total, plan)
	}
	// Idle identical peers tie; the tie breaks toward the lowest id for
	// the first-executing segment.
	if plan.Segments[0].Dest != 2 || plan.Segments[1].Dest != 3 {
		t.Fatalf("destinations = %d,%d, want 2,3", plan.Segments[0].Dest, plan.Segments[1].Dest)
	}
	// The forward chain ends back at the origin.
	if plan.Segments[0].ForwardTo != 3 || plan.Segments[1].ForwardTo != 1 {
		t.Fatalf("forward chain %+v, want 0→3, 1→origin(1)", plan)
	}
}

func TestChainPlannerKeepsPinnedTailHome(t *testing.T) {
	p := ChainPlanner{}
	frames := []FrameSignal{
		{MethodID: 1, Instrs: 5000},             // movable top
		{MethodID: 2, Instrs: 100},              // movable
		{MethodID: 3, Instrs: 10, Pinned: true}, // pinned: stays
		{MethodID: 4, Instrs: 10},               // below pinned: stays too
	}
	v := chainView(sig(1, 2, 1), []Signals{sig(2, 0, 1), sig(3, 0, 1)}, frames, Trace{})
	plan, ok := p.Plan(v)
	if !ok {
		t.Fatal("no plan despite two movable frames")
	}
	last := plan.Segments[len(plan.Segments)-1]
	if last.Dest != 1 || last.Frames != 2 {
		t.Fatalf("pinned tail %+v, want 2 frames staying on node 1", last)
	}
	for _, s := range plan.Segments[:len(plan.Segments)-1] {
		if s.Dest == 1 {
			t.Fatalf("movable segment placed locally: %+v", plan)
		}
	}
}

func TestChainPlannerRefusals(t *testing.T) {
	p := ChainPlanner{}
	// Too shallow.
	if _, ok := p.Plan(chainView(sig(1, 2, 1), []Signals{sig(2, 0, 1)}, flatFrames(1), Trace{})); ok {
		t.Error("planned a chain for a single-frame stack")
	}
	// Everything pinned.
	pinned := flatFrames(3)
	pinned[0].Pinned = true
	if _, ok := p.Plan(chainView(sig(1, 2, 1), []Signals{sig(2, 0, 1)}, pinned, Trace{})); ok {
		t.Error("planned a chain with the whole stack pinned")
	}
	// No peer clears the gain bar: peers as loaded as the local node.
	if _, ok := p.Plan(chainView(sig(1, 2, 1), []Signals{sig(2, 2, 1), sig(3, 2, 1)}, flatFrames(3), Trace{})); ok {
		t.Error("planned a chain with no throughput gain anywhere")
	}
	// No peers at all.
	if _, ok := p.Plan(chainView(sig(1, 2, 1), nil, flatFrames(3), Trace{})); ok {
		t.Error("planned a chain into an empty cluster")
	}
}

func TestChainPlannerBalancesSegmentCost(t *testing.T) {
	p := ChainPlanner{}
	// One hot frame on top, cold frames beneath: the hot frame should
	// travel alone; the cold tail forms the second link.
	frames := []FrameSignal{
		{MethodID: 1, Instrs: 1_000_000},
		{MethodID: 2, Instrs: 10},
		{MethodID: 3, Instrs: 10},
		{MethodID: 4, Instrs: 10},
	}
	v := chainView(sig(1, 3, 1), []Signals{sig(2, 0, 1), sig(3, 0, 1)}, frames, Trace{})
	plan, ok := p.Plan(v)
	if !ok {
		t.Fatal("no plan")
	}
	if plan.Segments[0].Frames != 1 {
		t.Fatalf("hot top segment carries %d frames, want 1: %+v", plan.Segments[0].Frames, plan)
	}
	if plan.Segments[1].Frames != 3 {
		t.Fatalf("cold tail carries %d frames, want 3: %+v", plan.Segments[1].Frames, plan)
	}
}

// TestChainPlannerPropertyGateAndLiveness extends the PR-3 property
// harness to chain plans: under any sequence of random views — random
// loads, random failure marks, random traces and frame shapes, any
// planner tuning — a plan emitted by Scheduler.PlanChain never places a
// segment on a node currently marked failed, never places one on a node
// inside the job's revisit cooldown, never spends more remote links than
// the job's remaining hop budget, never moves a pinned frame, and always
// partitions the exact stack depth into non-empty contiguous segments.
func TestChainPlannerPropertyGateAndLiveness(t *testing.T) {
	rng := rand.New(rand.NewSource(20100913)) // ICPP 2010, San Diego
	for iter := 0; iter < 4000; iter++ {
		budget := 1 + rng.Intn(5)
		cooldown := time.Duration(1+rng.Intn(200)) * time.Millisecond
		s := NewScheduler(Never{})
		s.Gate = HopGate{Budget: budget, Cooldown: cooldown}
		planner := ChainPlanner{
			MaxSegments: 2 + rng.Intn(4),
			MinGain:     0.01 + rng.Float64()*0.2,
		}

		nodes := 2 + rng.Intn(6)
		now := time.Unix(0, rng.Int63n(1<<40))
		local := 1 + rng.Intn(nodes)

		// Random trace: some hops spent, some nodes left recently enough
		// to still be quarantined, others long ago.
		tr := Trace{Hops: rng.Intn(budget + 2), Visited: map[int]time.Time{}}
		for id := 1; id <= nodes; id++ {
			switch rng.Intn(3) {
			case 0:
				tr.Visited[id] = now.Add(-time.Duration(rng.Int63n(int64(cooldown)))) // inside cooldown
			case 1:
				tr.Visited[id] = now.Add(-cooldown - time.Duration(rng.Intn(1000))*time.Millisecond)
			}
		}

		failed := map[int]bool{}
		v := ChainView{
			View:  View{Local: Signals{Node: local, Runnable: rng.Intn(6), Cores: 1, Speed: 0.3 + rng.Float64()}, RTT: map[int]time.Duration{}},
			Trace: tr,
		}
		for id := 1; id <= nodes; id++ {
			if id == local {
				continue
			}
			v.Peers = append(v.Peers, Signals{
				Node: id, Runnable: rng.Intn(6), Cores: 1 + rng.Intn(2), Speed: 0.2 + rng.Float64()*2,
			})
			v.RTT[id] = time.Duration(rng.Intn(20)) * time.Millisecond
			if rng.Intn(4) == 0 {
				s.MarkFailed(id)
				failed[id] = true
			}
		}
		depth := 1 + rng.Intn(7)
		for d := 0; d < depth; d++ {
			v.Frames = append(v.Frames, FrameSignal{
				MethodID: int32(d),
				Instrs:   uint64(rng.Intn(1_000_000)),
				Pinned:   rng.Intn(8) == 0,
			})
		}

		plan, ok := s.PlanChain(v, planner, now)
		if !ok {
			continue
		}
		if len(plan.Segments) < 2 {
			t.Fatalf("iter %d: single-segment plan %+v", iter, plan)
		}
		remote := 0
		total := 0
		for i, seg := range plan.Segments {
			if seg.Frames < 1 {
				t.Fatalf("iter %d: empty segment %d in %+v", iter, i, plan)
			}
			total += seg.Frames
			if seg.Dest == local {
				if i != len(plan.Segments)-1 {
					t.Fatalf("iter %d: local segment %d not the tail: %+v", iter, i, plan)
				}
				continue
			}
			remote++
			if failed[seg.Dest] {
				t.Fatalf("iter %d: segment placed on failed node %d: %+v", iter, seg.Dest, plan)
			}
			if left, okv := tr.Visited[seg.Dest]; okv && now.Sub(left) < cooldown {
				t.Fatalf("iter %d: segment revisits node %d %v after leaving (cooldown %v)",
					iter, seg.Dest, now.Sub(left), cooldown)
			}
		}
		if total != depth {
			t.Fatalf("iter %d: plan covers %d frames of depth %d: %+v", iter, total, depth, plan)
		}
		if remote > budget-tr.Hops {
			t.Fatalf("iter %d: %d remote links with %d of %d hops already spent",
				iter, remote, tr.Hops, budget)
		}
		// Pinned frames must all land in the local tail.
		frame := 0
		for _, seg := range plan.Segments {
			for k := 0; k < seg.Frames; k++ {
				if v.Frames[frame].Pinned && seg.Dest != local {
					t.Fatalf("iter %d: pinned frame %d shipped to node %d: %+v", iter, frame, seg.Dest, plan)
				}
				frame++
			}
		}
	}
}
