package policy

import (
	"sort"
	"time"
)

// This file is the workflow half of the decision layer: the chain
// planner. The push policies move whole stacks; the planner instead looks
// *inside* one job's stack and splits it into consecutive segments placed
// on different nodes — the paper's Fig 1c flow-forwarding path, driven by
// policy instead of by hand. The top segment executes first; when it
// pops, its return value is forwarded straight to the node hosting the
// next segment (planted there ahead of time), and so on until the final
// value flushes to the job's origin. Control never bounces back through
// the origin between stages, so per-stage freeze time is hidden and every
// stage boundary crosses the wire exactly once.

// ChainSegment is one link of a chain plan. Segments are listed top of
// stack first: segment 0 executes first, its return value flows to
// segment 1's node, and so on.
type ChainSegment struct {
	// Frames is how many stack frames this link carries (>= 1).
	Frames int
	// Dest is the node that executes the link. The last link may name the
	// planning node itself (pinned frames, or nothing to gain by moving
	// the tail); every other link names a peer.
	Dest int
	// ForwardTo is where the link's return value flows: the next link's
	// Dest, or the job's origin for the last link. Purely descriptive —
	// the executor derives the real completion chain — but keeping it in
	// the plan makes plans self-explanatory in logs and tests.
	ForwardTo int
}

// ChainPlan is a multi-segment placement plan for one job's stack.
// Frames across the segments sum to the stack depth at planning time.
type ChainPlan struct {
	Segments []ChainSegment
}

// RemoteSegments counts the links placed away from the planning node.
func (p ChainPlan) RemoteSegments(local int) int {
	n := 0
	for _, s := range p.Segments {
		if s.Dest != local {
			n++
		}
	}
	return n
}

// FrameSignal is the per-frame cost signal the planner sees, sampled
// from the parked thread: which method the frame runs, how many
// interpreter instructions it has retired so far (while on top of the
// stack — the frame's observed weight), and whether it is pinned to its
// node (frames holding sockets, §IV.D).
type FrameSignal struct {
	MethodID int32
	Instrs   uint64
	Pinned   bool
}

// ChainView is what the planner sees when splitting one job: the usual
// cluster view (local signals, candidate peers, RTT) plus the job's
// stack shape, top frame first, and its migration trace.
type ChainView struct {
	View
	Frames []FrameSignal
	Trace  Trace
}

// ChainPlanner turns a job's stack shape and the cluster view into a
// multi-segment placement plan. Zero values select defaults. The planner
// is deterministic in its view, like every policy in this package.
type ChainPlanner struct {
	// MaxSegments caps the chain length, local tail included (default 3;
	// values < 2 are treated as the default — a chain needs two links).
	MaxSegments int
	// MinDepth is the minimum stack depth worth chaining (default 2: a
	// single-frame stack is whole-stack territory). A pinned tail counts
	// toward the depth — one movable frame above a pinned frame is the
	// smallest legal chain (ship the top, keep the tail).
	MinDepth int
	// MinGain is the minimum per-job throughput advantage (net of the
	// RTT penalty) the best candidate peer must offer before any chain is
	// planned (default 0.05 reference cores).
	MinGain float64
	// RTTPenalty is score subtracted per millisecond of round-trip time
	// toward a candidate (default 0.05, matching CostModel).
	RTTPenalty float64
	// LocalityWeight scales the fault-locality bonus (default 0.5): a
	// peer mastering the data this node keeps faulting on is a better
	// host for the frames doing the faulting.
	LocalityWeight float64
}

func (p ChainPlanner) maxSegments() int {
	if p.MaxSegments < 2 {
		return 3
	}
	return p.MaxSegments
}

func (p ChainPlanner) minDepth() int {
	if p.MinDepth < 2 {
		return 2
	}
	return p.MinDepth
}

func (p ChainPlanner) minGain() float64 {
	if p.MinGain == 0 {
		return 0.05
	}
	return p.MinGain
}

func (p ChainPlanner) rttPenalty() float64 {
	if p.RTTPenalty == 0 {
		return 0.05
	}
	return p.RTTPenalty
}

func (p ChainPlanner) localityWeight() float64 {
	if p.LocalityWeight == 0 {
		return 0.5
	}
	return p.LocalityWeight
}

// score ranks a candidate destination exactly like CostModel does: the
// throughput a job gains there, plus the fault-locality bonus, minus the
// wire penalty.
func (p ChainPlanner) score(v View, peer Signals, totalFaults int64) float64 {
	s := peer.PerJobThroughput(1)
	if totalFaults > 0 {
		s += p.localityWeight() * float64(v.Local.Faults[peer.Node]) / float64(totalFaults)
	}
	s -= p.rttPenalty() * float64(v.RTT[peer.Node]) / float64(time.Millisecond)
	return s
}

// Plan splits the job's stack across the best candidate peers. The view's
// peers must already be filtered for liveness and gate legality by the
// caller (Scheduler.PlanChain does both). Returns false when no chain is
// worth executing: stack too shallow, every frame pinned, no peer clears
// the gain bar.
//
// The split is deterministic: peers are ranked by score (ties toward the
// lowest node id), the movable frames are partitioned into as many
// contiguous segments as there are usable peers (bounded by MaxSegments),
// each segment weighted to carry a near-equal share of the observed
// per-frame instruction cost, and segments are assigned top-first to the
// ranked peers — the first-executing, usually heaviest link lands on the
// best node. Frames at and below the shallowest pinned frame stay home as
// a trailing local link.
func (p ChainPlanner) Plan(v ChainView) (ChainPlan, bool) {
	depth := len(v.Frames)
	// Movable prefix: everything above the shallowest pinned frame.
	movable := depth
	for i, f := range v.Frames {
		if f.Pinned {
			movable = i
			break
		}
	}
	if depth < p.minDepth() || movable < 1 {
		return ChainPlan{}, false
	}

	// Rank candidate peers by score; require a real advantage.
	var totalFaults int64
	for _, c := range v.Local.Faults {
		totalFaults += c
	}
	type ranked struct {
		node  int
		score float64
	}
	cands := make([]ranked, 0, len(v.Peers))
	for _, peer := range v.Peers {
		cands = append(cands, ranked{peer.Node, p.score(v.View, peer, totalFaults)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].node < cands[j].node
	})
	localShare := v.Local.PerJobThroughput(0)
	usable := cands[:0]
	for _, c := range cands {
		if c.score-localShare >= p.minGain() {
			usable = append(usable, c)
		}
	}
	if len(usable) == 0 {
		return ChainPlan{}, false
	}

	// How many links: one per usable peer, at most one per movable frame,
	// within the segment cap (reserving one slot for the local tail).
	maxRemote := p.maxSegments()
	if movable < depth {
		maxRemote--
	}
	nRemote := len(usable)
	if nRemote > maxRemote {
		nRemote = maxRemote
	}
	if nRemote > movable {
		nRemote = movable
	}
	// A chain has at least two links: either two remote segments, or one
	// remote segment forwarding into a pinned local tail. One remote link
	// with no tail is a whole-stack migration — push-policy territory,
	// not a chain.
	tail := 0
	if movable < depth {
		tail = 1
	}
	if nRemote < 1 || nRemote+tail < 2 {
		return ChainPlan{}, false
	}

	// Partition the movable frames into nRemote contiguous cost-balanced
	// segments, top-first. Every frame weighs its retired instructions
	// plus one, so frames that have not run yet still count.
	var totalCost uint64
	for _, f := range v.Frames[:movable] {
		totalCost += f.Instrs + 1
	}
	plan := ChainPlan{}
	frame := 0
	for i := 0; i < nRemote; i++ {
		left := nRemote - i - 1 // segments still to emit after this one
		target := totalCost / uint64(nRemote)
		take, cost := 0, uint64(0)
		for frame+take < movable-left && (take == 0 || cost < target) {
			cost += v.Frames[frame+take].Instrs + 1
			take++
		}
		if i == nRemote-1 {
			take = movable - frame // last remote link absorbs the rest
		}
		plan.Segments = append(plan.Segments, ChainSegment{
			Frames: take, Dest: usable[i].node,
		})
		frame += take
	}
	if movable < depth {
		// Pinned tail stays with the planning node.
		plan.Segments = append(plan.Segments, ChainSegment{
			Frames: depth - movable, Dest: v.Local.Node,
		})
	}
	for i := range plan.Segments {
		if i+1 < len(plan.Segments) {
			plan.Segments[i].ForwardTo = plan.Segments[i+1].Dest
		} else {
			plan.Segments[i].ForwardTo = v.Local.Node
		}
	}
	return plan, true
}

// PlanChain is the scheduler's chain entry point, the chain analog of
// DecideJob: peers the engine has marked failed — and peers the hop gate
// forbids for this job (cooldown) — are hidden before the planner looks,
// the number of remote links is capped by the job's remaining hop budget,
// and any plan that still names an illegal destination is vetoed outright.
// However the planner is configured or extended, a plan that leaves this
// method cannot route a segment onto a dead, suspect or gate-forbidden
// node, nor spend hops the job does not have.
func (s *Scheduler) PlanChain(v ChainView, p ChainPlanner, now time.Time) (ChainPlan, bool) {
	// Remaining hop budget: each remote link of the chain is one
	// migration of the job's state.
	gate := s.Gate
	remaining := -1 // unlimited
	if b := gate.budget(); b >= 0 {
		remaining = b - v.Trace.Hops
		if remaining < 1 {
			s.mu.Lock()
			s.decisions++
			s.mu.Unlock()
			return ChainPlan{}, false
		}
	}

	s.mu.Lock()
	s.decisions++
	alive := make([]Signals, 0, len(v.Peers))
	for _, peer := range v.Peers {
		if s.failed[peer.Node] {
			continue
		}
		if !gate.Allow(v.Trace, peer.Node, now) {
			continue
		}
		alive = append(alive, peer)
	}
	s.mu.Unlock()
	v.Peers = alive

	plan, ok := p.Plan(v)
	if !ok {
		return ChainPlan{}, false
	}

	// Veto pass: the planner is policy code and may be replaced; nothing
	// it emits is trusted past this point.
	local := v.Local.Node
	remote := plan.RemoteSegments(local)
	s.mu.Lock()
	defer s.mu.Unlock()
	if remaining >= 0 && remote > remaining {
		s.vetoes++
		return ChainPlan{}, false
	}
	for _, seg := range plan.Segments {
		if seg.Dest == local {
			continue
		}
		if s.failed[seg.Dest] || !gate.Allow(v.Trace, seg.Dest, now) {
			s.vetoes++
			return ChainPlan{}, false
		}
	}
	return plan, true
}
