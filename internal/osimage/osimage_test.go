package osimage

import (
	"testing"

	"repro/internal/value"
)

func TestNewImageAllDirty(t *testing.T) {
	im := New(1 << 20)
	if im.NumPages() != 256 {
		t.Errorf("pages = %d, want 256", im.NumPages())
	}
	if im.DirtyCount() != im.NumPages() {
		t.Error("fresh image should be fully dirty (first pre-copy round sends everything)")
	}
}

func TestDrainClearsDirtySet(t *testing.T) {
	im := New(1 << 20)
	n := im.DrainDirty()
	if n != 256 {
		t.Errorf("drained %d, want 256", n)
	}
	if im.DirtyCount() != 0 {
		t.Error("drain should clear the set")
	}
}

func TestTouchDirtiesStablePages(t *testing.T) {
	im := New(1 << 20)
	im.DrainDirty()
	ref := value.MakeRef(1, 42)
	im.Touch(ref, 100)
	first := im.DirtyCount()
	if first == 0 {
		t.Fatal("touch should dirty at least one page")
	}
	// Repeated writes to the same object hit the same pages.
	for i := 0; i < 100; i++ {
		im.Touch(ref, 100)
	}
	if im.DirtyCount() > first+3 { // small allowance for background churn
		t.Errorf("hot-object writes dirtied %d pages (was %d); mapping not stable", im.DirtyCount(), first)
	}
}

func TestBigObjectDirtiesMorePagesButCapped(t *testing.T) {
	im := New(16 << 20)
	im.DrainDirty()
	im.Touch(value.MakeRef(1, 7), 1<<20) // 1 MiB object
	n := im.DirtyCount()
	if n < 16 {
		t.Errorf("1MiB write dirtied only %d pages", n)
	}
	if n > 40 {
		t.Errorf("per-write dirtying should be capped, got %d", n)
	}
}

func TestScatteredWritesDirtyManyPages(t *testing.T) {
	im := New(16 << 20)
	im.DrainDirty()
	for i := uint64(1); i <= 1000; i++ {
		im.Touch(value.MakeRef(1, i), 64)
	}
	if im.DirtyCount() < 500 {
		t.Errorf("1000 distinct objects dirtied only %d pages", im.DirtyCount())
	}
}

func TestPrecopyPlanArithmetic(t *testing.T) {
	p := PrecopyPlan{Rounds: []int{256, 40, 8}, StopAndCopy: 3}
	if p.TotalPages() != 307 {
		t.Errorf("TotalPages = %d", p.TotalPages())
	}
	if p.TotalBytes() != 307*PageSize {
		t.Errorf("TotalBytes = %d", p.TotalBytes())
	}
}
