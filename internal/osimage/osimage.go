// Package osimage models the guest-OS memory image that Xen-style live
// migration transfers (§IV.A): a page array with dirty tracking and an
// iterative pre-copy engine. The workload's heap writes drive the dirty
// set through a write hook, so dirty rates are workload-dependent exactly
// as they are for a real guest.
//
// The paper configures 2 GB guests; we scale the image (default 64 MiB)
// and record the scaling in EXPERIMENTS.md — migration latency scales
// linearly with image size, so shapes are preserved.
package osimage

import (
	"sync"

	"repro/internal/value"
)

// PageSize is the guest page size in bytes.
const PageSize = 4096

// Image is a guest memory image.
type Image struct {
	mu       sync.Mutex
	numPages int
	dirty    map[int]struct{}
	// baseDirtyRate injects a steady background dirtying (guest OS daemons,
	// page-cache churn) per Touch call, so even read-mostly workloads keep
	// some pages warm — as with a real guest.
	touchCounter uint64
}

// New builds an image of the given size (rounded up to whole pages). All
// pages start dirty: the first pre-copy round transfers the full image.
func New(sizeBytes int64) *Image {
	n := int((sizeBytes + PageSize - 1) / PageSize)
	img := &Image{numPages: n, dirty: make(map[int]struct{}, n)}
	for i := 0; i < n; i++ {
		img.dirty[i] = struct{}{}
	}
	return img
}

// NumPages returns the page count.
func (im *Image) NumPages() int { return im.numPages }

// SizeBytes returns the image size in bytes.
func (im *Image) SizeBytes() int64 { return int64(im.numPages) * PageSize }

// Touch marks the page backing a heap object dirty. The mapping from
// object references to pages is a stable hash — a fixed object always
// lands on the same page, so repeated writes to a small working set dirty
// few pages (good for pre-copy) while scattered writes dirty many (bad),
// reproducing the dirty-rate dynamics live migration depends on.
func (im *Image) Touch(ref value.Ref, approxSize int64) {
	im.mu.Lock()
	defer im.mu.Unlock()
	pages := int(approxSize/PageSize) + 1
	base := int(uint64(ref)*2654435761) % im.numPages
	if base < 0 {
		base = -base
	}
	for i := 0; i < pages && i < 32; i++ { // cap: one write dirties ≤32 pages
		im.dirty[(base+i)%im.numPages] = struct{}{}
	}
	im.touchCounter++
	if im.touchCounter%64 == 0 {
		// Background guest activity.
		im.dirty[int(im.touchCounter/64)%im.numPages] = struct{}{}
	}
}

// DirtyCount returns the current dirty-set size.
func (im *Image) DirtyCount() int {
	im.mu.Lock()
	defer im.mu.Unlock()
	return len(im.dirty)
}

// DrainDirty atomically snapshots and clears the dirty set, returning the
// number of pages to transfer this round.
func (im *Image) DrainDirty() int {
	im.mu.Lock()
	defer im.mu.Unlock()
	n := len(im.dirty)
	im.dirty = make(map[int]struct{}, n/2+1)
	return n
}

// PrecopyPlan summarizes one pre-copy execution for reporting.
type PrecopyPlan struct {
	Rounds      []int // pages per round (round 0 = full image)
	StopAndCopy int   // pages in the final freeze round
}

// TotalPages returns all pages transferred, pre-copy plus freeze.
func (p *PrecopyPlan) TotalPages() int {
	t := p.StopAndCopy
	for _, r := range p.Rounds {
		t += r
	}
	return t
}

// TotalBytes returns all bytes transferred.
func (p *PrecopyPlan) TotalBytes() int64 { return int64(p.TotalPages()) * PageSize }
