package sod_test

import (
	"sync"
	"testing"
	"time"

	"repro/sod"
	"repro/sodasm"
)

// buildApp assembles a small two-stage computation with a pause native.
func buildApp() *sod.Program {
	pb := sodasm.NewProgram()
	pb.Native("pause", 0, false)

	work := pb.Func("work", true, "n")
	work.Line().CallNat("pause", 0)
	work.Line().Int(0).Store("acc")
	work.Line().Int(0).Store("i")
	work.Label("loop")
	work.Line().Load("i").Load("n").Ge().Jnz("done")
	work.Line().Load("acc").Load("i").Add().Store("acc")
	work.Line().Load("i").Int(1).Add().Store("i")
	work.Line().Jmp("loop")
	work.Label("done")
	work.Line().Load("acc").RetV()

	mn := pb.Func("main", true, "n")
	mn.Line().Load("n").Call("work", 1).Store("r")
	mn.Line().Load("r").Int(7).Add().RetV()
	return pb.MustBuild()
}

type pauser struct {
	once    sync.Once
	reached chan struct{}
	release chan struct{}
}

func newPauser() *pauser {
	return &pauser{reached: make(chan struct{}), release: make(chan struct{})}
}

func (p *pauser) fn(args []sod.Value) (sod.Value, error) {
	p.once.Do(func() {
		close(p.reached)
		<-p.release
	})
	return sod.Value{}, nil
}

func TestPublicAPIEndToEnd(t *testing.T) {
	app := sod.Compile(buildApp())
	cluster, err := sod.NewCluster(app, sod.Gigabit,
		sod.Node{ID: 1}, sod.Node{ID: 2, Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	p := newPauser()
	cluster.On(1).BindNative("pause", p.fn)
	cluster.On(2).BindNative("pause", p.fn)

	home := cluster.On(1)
	job, err := home.Start("main", sod.Int(500_000))
	if err != nil {
		t.Fatal(err)
	}
	<-p.reached
	type out struct {
		m   *sod.Metrics
		err error
	}
	ch := make(chan out, 1)
	go func() {
		m, merr := home.Migrate(job, sod.Migration{Frames: 1, Dest: 2, Flow: sod.ReturnHome})
		ch <- out{m, merr}
	}()
	time.Sleep(time.Millisecond)
	close(p.release)
	o := <-ch
	if o.err != nil {
		t.Fatal(o.err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(500_000)*(500_000-1)/2 + 7
	if res.I != want {
		t.Errorf("result = %d, want %d", res.I, want)
	}
	if o.m.Latency <= 0 || o.m.StateBytes <= 0 {
		t.Errorf("metrics look wrong: %+v", o.m)
	}
}

func TestCompileWithStatusChecksStillRuns(t *testing.T) {
	app := sod.CompileWith(buildApp(), sod.CompileOptions{Detection: sod.StatusChecks})
	cluster, err := sod.NewCluster(app, sod.Unlimited, sod.Node{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	cluster.On(1).BindNative("pause", func(args []sod.Value) (sod.Value, error) {
		return sod.Value{}, nil
	})
	job, err := cluster.On(1).Start("main", sod.Int(100))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 100*99/2+7 {
		t.Errorf("result = %d", res.I)
	}
}

func TestCompileReportExposesTransforms(t *testing.T) {
	_, rep, err := sod.CompileReport(buildApp(), sod.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lifted := 0
	for _, mr := range rep.Methods {
		if mr.Lifted {
			lifted++
		}
	}
	if lifted < 2 {
		t.Errorf("expected both methods lifted, got %d", lifted)
	}
}

func TestWaitTimeout(t *testing.T) {
	app := sod.Compile(buildApp())
	cluster, _ := sod.NewCluster(app, sod.Unlimited, sod.Node{ID: 1})
	p := newPauser()
	cluster.On(1).BindNative("pause", p.fn)
	job, err := cluster.On(1).Start("main", sod.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	<-p.reached
	if _, done, _ := job.WaitTimeout(20 * time.Millisecond); done {
		t.Error("job should still be paused")
	}
	close(p.release)
	if _, done, err := job.WaitTimeout(5 * time.Second); !done || err != nil {
		t.Errorf("job should finish: done=%v err=%v", done, err)
	}
}

func TestUnknownNodeAndMethod(t *testing.T) {
	app := sod.Compile(buildApp())
	cluster, _ := sod.NewCluster(app, sod.Unlimited, sod.Node{ID: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("On with an unknown node should panic")
			}
		}()
		cluster.On(42)
	}()
	if _, ok := cluster.Lookup(42); ok {
		t.Error("Lookup of an unknown node should report false")
	}
	if h, ok := cluster.Lookup(1); !ok || h == nil {
		t.Error("Lookup of a known node should succeed")
	}
	if _, err := cluster.On(1).Start("nope"); err == nil {
		t.Error("unknown method should error")
	}
}
