package sod_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/sodee"
	"repro/internal/workloads"
	"repro/sod"
)

// The conformance suite: the same scenarios run against both Client
// implementations — the in-process cluster (Cluster.Client) and a real
// 3-node TCP daemon cluster (sod.Dial) — so the two surfaces cannot
// drift. Every fixture is the canonical elastic topology: a weak
// one-core node 1 taking submissions, two strong peers, the threshold
// push policy at a 2ms tick.

const (
	// confIters sizes the watched burst: heavy enough that the balancer
	// reliably spills it even on a starved single-CPU host (the same
	// reasoning as the daemon steal tests), light enough to finish in
	// seconds.
	confIters   = 600_000
	confTimeout = 60 * time.Second
)

type confFixture struct {
	name   string
	client sod.Client
	// submitNode is where jobs land (node 1 in both fixtures).
	submitNode int
}

// waitConverged polls through the client until nodes 1..3 are alive in
// the submit node's view — transport-agnostic, so both fixtures use it.
func waitConverged(t *testing.T, cl sod.Client) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for {
		members, err := cl.Members(ctx)
		if err != nil {
			t.Fatal(err)
		}
		alive := 0
		for _, m := range members {
			if m.Node >= 1 && m.Node <= 3 && m.State.String() == "alive" {
				alive++
			}
		}
		if alive == 3 {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatalf("membership never converged: %+v", members)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// withClients runs fn against both implementations.
func withClients(t *testing.T, fn func(t *testing.T, f confFixture)) {
	t.Run("inprocess", func(t *testing.T) {
		prog, err := daemon.BuildWorkload("cruncher")
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := sod.NewCluster(prog, sod.Gigabit,
			sod.Node{ID: 1, Cores: 1, Slow: 16},
			sod.Node{ID: 2}, sod.Node{ID: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []int{1, 2, 3} {
			workloads.BindCommon(cluster.On(id).VM())
		}
		bal := cluster.AutoBalance(sod.ThresholdPolicy(0, 0),
			sod.BalanceOptions{Interval: 2 * time.Millisecond})
		t.Cleanup(bal.Stop)
		fn(t, confFixture{name: "inprocess", client: cluster.Client(), submitNode: 1})
	})

	t.Run("daemon", func(t *testing.T) {
		mk := func(id, cores, slow int) *daemon.Daemon {
			d, err := daemon.New(daemon.Config{
				ID: id, Cores: cores, Slow: slow,
				Policy: "threshold", Interval: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("boot daemon %d: %v", id, err)
			}
			t.Cleanup(d.Stop)
			return d
		}
		d1 := mk(1, 1, 16)
		d2 := mk(2, 0, 0)
		d3 := mk(3, 0, 0)
		if err := d2.Join(d1.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := d3.Join(d1.Addr()); err != nil {
			t.Fatal(err)
		}
		cl, err := sod.Dial(d1.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() }) //nolint:errcheck
		waitConverged(t, cl)
		fn(t, confFixture{name: "daemon", client: cl, submitNode: 1})
	})
}

// withChainClients runs fn against both implementations with the chain
// planner armed: a weak submit node, two idle strong peers, and a
// chain-only balancer (nothing pushes; the planner owns every chained
// job). The workload is the three-stage workflow pipeline.
func withChainClients(t *testing.T, fn func(t *testing.T, f confFixture)) {
	t.Run("inprocess", func(t *testing.T) {
		prog, err := daemon.BuildWorkload("workflow")
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := sod.NewCluster(prog, sod.Gigabit,
			sod.Node{ID: 1, Cores: 1, Slow: 16},
			sod.Node{ID: 2}, sod.Node{ID: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []int{1, 2, 3} {
			workloads.BindCommon(cluster.On(id).VM())
		}
		bal := cluster.AutoBalance(sod.NeverPolicy(),
			sod.BalanceOptions{Interval: 2 * time.Millisecond, Chain: true})
		t.Cleanup(bal.Stop)
		fn(t, confFixture{name: "inprocess", client: cluster.Client(), submitNode: 1})
	})

	t.Run("daemon", func(t *testing.T) {
		mk := func(id, cores, slow int) *daemon.Daemon {
			d, err := daemon.New(daemon.Config{
				ID: id, Cores: cores, Slow: slow, Workload: "workflow",
				Policy: "none", Chain: true, Interval: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("boot daemon %d: %v", id, err)
			}
			t.Cleanup(d.Stop)
			return d
		}
		d1 := mk(1, 1, 16)
		d2 := mk(2, 0, 0)
		d3 := mk(3, 0, 0)
		if err := d2.Join(d1.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := d3.Join(d1.Addr()); err != nil {
			t.Fatal(err)
		}
		cl, err := sod.Dial(d1.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() }) //nolint:errcheck
		waitConverged(t, cl)
		fn(t, confFixture{name: "daemon", client: cl, submitNode: 1})
	})
}

func TestConformanceSubmitAndWait(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		seeds := []int64{11, 12, 13}
		handles := make([]sod.JobHandle, len(seeds))
		for i, s := range seeds {
			h, err := f.client.Submit(ctx, "main", sod.Int(s), sod.Int(20_000))
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			if h.ID() == 0 {
				t.Fatal("job handle has no id")
			}
			handles[i] = h
		}
		for i, h := range handles {
			res, err := h.Wait(ctx)
			if err != nil {
				t.Fatalf("wait %d: %v", i, err)
			}
			if want := workloads.CruncherExpected(seeds[i], 20_000); res.I != want {
				t.Errorf("job %d: result %d, want %d", i, res.I, want)
			}
			if !h.Done() {
				t.Errorf("job %d not Done after Wait", i)
			}
		}
	})
}

func TestConformanceWaitHonorsContext(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		bg, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		h, err := f.client.Submit(bg, "main", sod.Int(9), sod.Int(2_000_000))
		if err != nil {
			t.Fatal(err)
		}
		short, scancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer scancel()
		if _, err := h.Wait(short); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("short wait: err = %v, want DeadlineExceeded", err)
		}
		// The abandoned wait must not have disturbed the job.
		res, err := h.Wait(bg)
		if err != nil {
			t.Fatal(err)
		}
		if want := workloads.CruncherExpected(9, 2_000_000); res.I != want {
			t.Errorf("result %d, want %d", res.I, want)
		}
	})
}

func TestConformanceJobLookup(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		h, err := f.client.Submit(ctx, "main", sod.Int(5), sod.Int(10_000))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		// A completed job stays queryable.
		again, err := f.client.Job(h.ID())
		if err != nil {
			t.Fatalf("lookup of completed job: %v", err)
		}
		res, err := again.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if want := workloads.CruncherExpected(5, 10_000); res.I != want {
			t.Errorf("re-looked-up result %d, want %d", res.I, want)
		}
		if _, err := f.client.Job(1 << 40); err == nil {
			t.Error("lookup of an unknown job should error")
		}
	})
}

func TestConformanceMembers(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		// Membership converges asynchronously on the daemon fixture.
		deadline := time.Now().Add(20 * time.Second)
		for {
			members, err := f.client.Members(ctx)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int]sod.Member, len(members))
			for _, m := range members {
				seen[m.Node] = m
			}
			ok := len(seen) >= 3
			for _, id := range []int{1, 2, 3} {
				m, present := seen[id]
				if !present || m.State.String() != "alive" {
					ok = false
				}
			}
			if ok {
				if !seen[f.submitNode].Self {
					t.Errorf("node %d not marked Self: %+v", f.submitNode, members)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("membership never converged: %+v", members)
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

func TestConformanceStats(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, err := f.client.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.Balance.Ticks > 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("balancer never ticked")
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// TestConformanceWatchLifecycle is the headline scenario: a burst lands
// on the weak node, the balancer spills it, and a watcher of each job
// sees the whole story — started first, completed last with the right
// result, migrations in between with direction, reason and hop count.
func TestConformanceWatchLifecycle(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()

		const njobs = 5
		handles := make([]sod.JobHandle, njobs)
		streams := make([]<-chan sod.JobEvent, njobs)
		seeds := make([]int64, njobs)
		for i := range handles {
			seeds[i] = int64(40 + i)
			h, err := f.client.Submit(ctx, "main", sod.Int(seeds[i]), sod.Int(confIters))
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			handles[i] = h
			ch, err := f.client.Watch(ctx, h.ID())
			if err != nil {
				t.Fatalf("watch %d: %v", i, err)
			}
			streams[i] = ch
		}

		migrated := 0
		for i, ch := range streams {
			var events []sod.JobEvent
			for ev := range ch {
				events = append(events, ev)
			}
			if len(events) < 2 {
				t.Fatalf("job %d: stream had %d events, want at least started+completed", i, len(events))
			}
			first, last := events[0], events[len(events)-1]
			if first.Kind != sod.JobStarted || first.From != f.submitNode {
				t.Errorf("job %d: first event %+v, want started on node %d", i, first, f.submitNode)
			}
			if last.Kind != sod.JobCompleted || last.Err != "" {
				t.Errorf("job %d: last event %+v, want clean completion", i, last)
			}
			if want := workloads.CruncherExpected(seeds[i], confIters); last.Result != want {
				t.Errorf("job %d: completed with %d, want %d", i, last.Result, want)
			}
			for _, ev := range events[1 : len(events)-1] {
				switch ev.Kind {
				case sod.JobMigrated:
					migrated++
					if ev.From == ev.To || ev.Hops < 1 {
						t.Errorf("job %d: malformed migration event %+v", i, ev)
					}
					if ev.Reason == sod.MigrateManual {
						t.Errorf("job %d: balancer migration labeled manual: %+v", i, ev)
					}
				case sod.JobResultFlushed:
					if ev.To != f.submitNode {
						t.Errorf("job %d: result flushed to node %d, want origin %d", i, ev.To, f.submitNode)
					}
				case sod.JobMigrationFailed: // a crashed-transfer fallback is legal mid-stream
				default:
					t.Errorf("job %d: unexpected mid-stream event %+v", i, ev)
				}
			}
		}
		if migrated == 0 {
			t.Error("no watched job ever migrated; the burst ran serially")
		}

		// The results themselves are still intact after watching.
		for i, h := range handles {
			res, err := h.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if want := workloads.CruncherExpected(seeds[i], confIters); res.I != want {
				t.Errorf("job %d: result %d, want %d", i, res.I, want)
			}
		}
	})
}

func TestConformanceWatchReplayAndUnknown(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		if _, err := f.client.Watch(ctx, 1<<40); err == nil {
			t.Error("watching an unknown job should error")
		}
		h, err := f.client.Submit(ctx, "main", sod.Int(3), sod.Int(10_000))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		// Watching after completion replays the retained history and
		// terminates immediately.
		ch, err := f.client.Watch(ctx, h.ID())
		if err != nil {
			t.Fatal(err)
		}
		var events []sod.JobEvent
		timeout := time.After(10 * time.Second)
		for {
			select {
			case ev, ok := <-ch:
				if !ok {
					goto done
				}
				events = append(events, ev)
			case <-timeout:
				t.Fatal("replayed stream never terminated")
			}
		}
	done:
		if len(events) < 2 || events[0].Kind != sod.JobStarted ||
			events[len(events)-1].Kind != sod.JobCompleted {
			t.Fatalf("replayed stream malformed: %+v", events)
		}
	})
}

// TestConformanceChainedSubmitAndEvents: chain-driven jobs behave
// identically through both clients — SubmitChain places the stack as a
// planner-driven forward pipeline, the result comes back right, and the
// watch stream narrates the chain the same way on both surfaces:
// started first, completed last, a planted link for every residual
// segment, a chained-reason migration for the executing one, and a
// forward for every link control reached.
func TestConformanceChainedSubmitAndEvents(t *testing.T) {
	withChainClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()

		const chainIters = 300_000
		seeds := []int64{61, 62}
		handles := make([]sod.JobHandle, len(seeds))
		streams := make([]<-chan sod.JobEvent, len(seeds))
		for i, s := range seeds {
			h, err := f.client.SubmitChain(ctx, "main", sod.Int(s), sod.Int(chainIters))
			if err != nil {
				t.Fatalf("submit chained %d: %v", i, err)
			}
			handles[i] = h
			ch, err := f.client.Watch(ctx, h.ID())
			if err != nil {
				t.Fatalf("watch %d: %v", i, err)
			}
			streams[i] = ch
		}

		chains := 0
		for i, ch := range streams {
			var events []sod.JobEvent
			for ev := range ch {
				events = append(events, ev)
			}
			if len(events) < 2 {
				t.Fatalf("job %d: stream had %d events", i, len(events))
			}
			first, last := events[0], events[len(events)-1]
			if first.Kind != sod.JobStarted || first.From != f.submitNode {
				t.Errorf("job %d: first event %+v, want started on node %d", i, first, f.submitNode)
			}
			if last.Kind != sod.JobCompleted || last.Err != "" {
				t.Errorf("job %d: last event %+v, want clean completion", i, last)
			}
			if want := workloads.WorkflowExpected(seeds[i], chainIters); last.Result != want {
				t.Errorf("job %d: completed with %d, want %d", i, last.Result, want)
			}
			planted, forwarded := 0, 0
			for _, ev := range events {
				switch ev.Kind {
				case sod.JobSegmentPlanted:
					planted++
					if ev.SegOf < 2 || ev.Seg < 1 || ev.Seg >= ev.SegOf {
						t.Errorf("job %d: malformed planted event %+v", i, ev)
					}
				case sod.JobSegmentForwarded:
					forwarded++
				case sod.JobMigrated:
					if ev.Reason == sod.MigrateChained {
						chains++
						if ev.Seg != 0 || ev.SegOf < 2 {
							t.Errorf("job %d: chained migration without plan position %+v", i, ev)
						}
					}
				}
			}
			if planted > 0 && forwarded == 0 {
				t.Errorf("job %d: links planted but control never forwarded: %+v", i, events)
			}
		}
		if chains == 0 {
			t.Error("no job was ever chain-placed; the planner never fired")
		}

		// Results remain intact after watching, as everywhere else.
		for i, h := range handles {
			res, err := h.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if want := workloads.WorkflowExpected(seeds[i], chainIters); res.I != want {
				t.Errorf("job %d: result %d, want %d", i, res.I, want)
			}
		}
	})
}

// TestConformanceConcurrentWatchesOfOneJob: both implementations must
// serve any number of simultaneous watchers of the same job the full
// stream — the drift this suite exists to prevent.
func TestConformanceConcurrentWatchesOfOneJob(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		h, err := f.client.Submit(ctx, "main", sod.Int(8), sod.Int(100_000))
		if err != nil {
			t.Fatal(err)
		}
		const watchers = 3
		streams := make([]<-chan sod.JobEvent, watchers)
		for i := range streams {
			ch, err := f.client.Watch(ctx, h.ID())
			if err != nil {
				t.Fatalf("watcher %d: %v", i, err)
			}
			streams[i] = ch
		}
		if _, err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		for i, ch := range streams {
			var events []sod.JobEvent
			deadline := time.After(30 * time.Second)
		drain:
			for {
				select {
				case ev, ok := <-ch:
					if !ok {
						break drain
					}
					events = append(events, ev)
				case <-deadline:
					t.Fatalf("watcher %d never terminated; got %+v", i, events)
				}
			}
			if len(events) < 2 || events[0].Kind != sod.JobStarted ||
				events[len(events)-1].Kind != sod.JobCompleted {
				t.Errorf("watcher %d: malformed stream %+v", i, events)
			}
		}
	})
}

// TestConformanceWatchAll: one cluster-wide stream, opened before the
// burst, sees every submitted job's whole story on both surfaces —
// exactly one terminal per job, with the right result, stamped with the
// origin node — and closes when its context does. Events route to the
// origin node's bus exactly once, so job id alone keys the accounting.
func TestConformanceWatchAll(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		wctx, wcancel := context.WithCancel(ctx)
		defer wcancel()
		all, err := f.client.WatchAll(wctx)
		if err != nil {
			t.Fatal(err)
		}

		const njobs = 4
		seeds := make(map[uint64]int64, njobs)
		for i := 0; i < njobs; i++ {
			s := int64(70 + i)
			h, err := f.client.Submit(ctx, "main", sod.Int(s), sod.Int(20_000))
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			seeds[h.ID()] = s
		}

		terminals := make(map[uint64]int, njobs)
		results := make(map[uint64]int64, njobs)
		deadline := time.After(confTimeout)
		for done := 0; done < njobs; {
			select {
			case ev, ok := <-all:
				if !ok {
					t.Fatalf("cluster stream closed early; terminals so far: %v", terminals)
				}
				if ev.Origin < 1 || ev.Origin > 3 {
					t.Errorf("event without a cluster origin: %+v", ev)
				}
				if _, ours := seeds[ev.Job]; !ours || ev.Kind != sod.JobCompleted {
					continue
				}
				terminals[ev.Job]++
				if terminals[ev.Job] == 1 {
					done++
				}
				results[ev.Job] = ev.Result
			case <-deadline:
				t.Fatalf("cluster stream delivered %d/%d terminals before timing out", len(terminals), njobs)
			}
		}
		for id, s := range seeds {
			if n := terminals[id]; n != 1 {
				t.Errorf("job %d: %d terminal events, want exactly 1", id, n)
			}
			if want := workloads.CruncherExpected(s, 20_000); results[id] != want {
				t.Errorf("job %d: terminal result %d, want %d", id, results[id], want)
			}
		}

		// Cancelling the watch context ends the stream.
		wcancel()
		closeDeadline := time.After(10 * time.Second)
		for {
			select {
			case _, ok := <-all:
				if !ok {
					return
				}
			case <-closeDeadline:
				t.Fatal("cluster stream never closed after context cancellation")
			}
		}
	})
}

// TestConformanceSlowWatcherBackpressure: a WatchAll consumer that stops
// reading must never stall the cluster. Both surfaces shed load instead
// of blocking — the in-process bus coalesces its ring and stamps
// JobLagged markers; the daemon path coalesces server-side and drops at
// the client's delivery buffer — so the burst completes at full speed
// while the stream is stalled, and the backlog the consumer finally
// drains is provably incomplete.
func TestConformanceSlowWatcherBackpressure(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		wctx, wcancel := context.WithCancel(ctx)
		defer wcancel()
		all, err := f.client.WatchAll(wctx)
		if err != nil {
			t.Fatal(err)
		}
		// Stalled on purpose: nothing reads `all` until the burst is done.

		// >= 1600 events total, far beyond every buffer in the path.
		// Batched because the daemon retains only the most recent finished
		// jobs — a Wait that trails 800 submissions would find the early
		// ones already aged out of the retention ring.
		const njobs, batch = 800, 200
		for lo := 0; lo < njobs; lo += batch {
			handles := make([]sod.JobHandle, batch)
			for i := range handles {
				h, err := f.client.Submit(ctx, "main", sod.Int(int64(lo+i)), sod.Int(300))
				if err != nil {
					t.Fatalf("submit %d: %v", lo+i, err)
				}
				handles[i] = h
			}
			// Liveness: every job completes promptly even though the
			// watcher has not read a single event.
			for i, h := range handles {
				res, err := h.Wait(ctx)
				if err != nil {
					t.Fatalf("wait %d with stalled watcher: %v", lo+i, err)
				}
				if want := workloads.CruncherExpected(int64(lo+i), 300); res.I != want {
					t.Errorf("job %d: result %d, want %d", lo+i, res.I, want)
				}
			}
		}

		// Now drain the stalled stream: whatever survived the shedding.
		received, lagged, closed := 0, 0, false
		var droppedByMarkers int64
	drain:
		for {
			select {
			case ev, ok := <-all:
				if !ok {
					closed = true
					break drain
				}
				received++
				if ev.Kind == sod.JobLagged {
					lagged++
					droppedByMarkers += ev.Result
				}
			case <-time.After(2 * time.Second):
				break drain // live stream gone quiet: backlog fully drained
			}
		}
		t.Logf("stalled watcher: received %d of >=%d events (%d lagged markers accounting for %d drops, closed=%v)",
			received, 2*njobs, lagged, droppedByMarkers, closed)
		if received == 0 && !closed {
			t.Error("stalled watcher drained nothing and was not evicted; the stream just vanished")
		}
		// The shedding must be observable: markers, an eviction, or a
		// backlog strictly smaller than the events the burst published.
		if lagged == 0 && !closed && received >= 2*njobs {
			t.Errorf("stalled watcher received all %d events; no backpressure was ever applied", received)
		}
	})
}

// TestConformanceMetricsAgreeWithStats pins the two observability
// surfaces to each other: the metrics registry (Client.Metrics) and the
// counter API (Client.Stats) must tell the same story about the submit
// node's migrations and steals — on both implementations. Pushes can
// only originate at node 1 (the one node with home-grown jobs), so the
// balancer's Pushed count and node 1's pushed-migration counter must
// converge to equality once the burst drains.
func TestConformanceMetricsAgreeWithStats(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()

		const njobs = 5
		handles := make([]sod.JobHandle, njobs)
		for i := range handles {
			h, err := f.client.Submit(ctx, "main", sod.Int(int64(70+i)), sod.Int(confIters))
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			if _, err := h.Wait(ctx); err != nil {
				t.Fatalf("wait %d: %v", i, err)
			}
		}

		migrationsBy := func(snap *sod.MetricsSnapshot, reason string) int64 {
			return snap.Counters[`sod_migrations_total{reason="`+reason+`"}`]
		}
		stealKeys := []string{
			"sod_steal_requests_sent_total", "sod_steal_won_total",
			"sod_steal_requests_served_total", "sod_steal_granted_total",
			"sod_steal_denied_total", "sod_steal_failed_transfers_total",
		}

		// The registry counters are updated outside the stats locks, so
		// poll briefly for agreement instead of demanding instant
		// consistency.
		deadline := time.Now().Add(10 * time.Second)
		var lastErr string
		for {
			st, err := f.client.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := f.client.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			lastErr = ""
			if got, want := migrationsBy(snap, "pushed"), int64(st.Balance.Pushed); got != want {
				lastErr = fmt.Sprintf("pushed: metrics %d vs stats %d", got, want)
			}
			steal := []int64{
				int64(st.Steal.RequestsSent), int64(st.Steal.Won),
				int64(st.Steal.RequestsServed), int64(st.Steal.Granted),
				int64(st.Steal.Denied), int64(st.Steal.FailedTransfers),
			}
			for i, key := range stealKeys {
				if got := snap.Counters[key]; got != steal[i] {
					lastErr = fmt.Sprintf("%s: metrics %d vs stats %d", key, got, steal[i])
				}
			}
			// Internal consistency: every successful migration observes
			// exactly one latency sample.
			var totalMigs int64
			for _, reason := range []string{"manual", "pushed", "stolen", "rebalanced", "chained"} {
				totalMigs += migrationsBy(snap, reason)
			}
			if lat := snap.Histograms["sod_migration_latency_seconds"]; lat.Count != totalMigs {
				lastErr = fmt.Sprintf("latency histogram count %d vs migrations total %d", lat.Count, totalMigs)
			}
			if lastErr == "" {
				if totalMigs == 0 {
					t.Fatal("no migrations recorded in the metrics registry; the burst never spilled")
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("metrics and stats never agreed: %s", lastErr)
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestConformanceTrace pins the trace surface: after a job that
// migrated, Trace must return exactly one root span plus a causally
// consistent timeline (every Parent resolves, migrate spans carry their
// capture/transfer/restore phases) — on both implementations — and an
// unknown job must be an error, not an empty timeline.
func TestConformanceTrace(t *testing.T) {
	withClients(t, func(t *testing.T, f confFixture) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()

		const njobs = 4
		handles := make([]sod.JobHandle, njobs)
		for i := range handles {
			h, err := f.client.Submit(ctx, "main", sod.Int(int64(90+i)), sod.Int(confIters))
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			if _, err := h.Wait(ctx); err != nil {
				t.Fatalf("wait %d: %v", i, err)
			}
		}

		// Remote spans ride home asynchronously; poll until some job's
		// timeline contains a complete migration hop.
		deadline := time.Now().Add(10 * time.Second)
		for {
			var sawHop bool
			for _, h := range handles {
				spans, err := f.client.Trace(ctx, h.ID())
				if err != nil {
					t.Fatalf("trace job %d: %v", h.ID(), err)
				}
				byID := make(map[uint64]sod.TraceSpan, len(spans))
				roots := 0
				for _, s := range spans {
					byID[s.ID] = s
					if s.Parent == 0 {
						roots++
						if s.Name != "job" {
							t.Fatalf("job %d root span named %q, want \"job\"", h.ID(), s.Name)
						}
					}
				}
				if roots != 1 {
					t.Fatalf("job %d has %d root spans, want exactly 1: %+v", h.ID(), roots, spans)
				}
				phases := make(map[uint64]map[string]bool) // migrate span → child phases
				for _, s := range spans {
					if s.Parent == 0 {
						continue
					}
					parent, ok := byID[s.Parent]
					if !ok {
						t.Fatalf("job %d span %q (id %d) has unresolved parent %d", h.ID(), s.Name, s.ID, s.Parent)
					}
					if parent.Name == "migrate" {
						if phases[s.Parent] == nil {
							phases[s.Parent] = make(map[string]bool)
						}
						phases[s.Parent][s.Name] = true
					}
				}
				for id, ph := range phases {
					for _, want := range []string{"capture", "transfer", "restore"} {
						if !ph[want] {
							t.Fatalf("job %d migrate span %d missing %s phase (has %v)", h.ID(), id, want, ph)
						}
					}
					sawHop = true
				}
			}
			if sawHop {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("no job's trace ever showed a complete migration hop")
			}
			time.Sleep(10 * time.Millisecond)
		}

		if _, err := f.client.Trace(ctx, 999_999); err == nil {
			t.Fatal("Trace(unknown job) succeeded; want an error")
		}
	})
}

// TestConformanceRehomedWatch pins the origin re-homing contract on both
// client surfaces: a Wait and a Watch attached through the origin's
// successor BEFORE the origin dies permanently must still complete — the
// executing nodes' result flushes redirect to the successor's shadow —
// with the terminal event's Origin re-stamped to the successor, exactly
// one terminal per stream, and at most one EvLagged marker standing in
// for the stream that died with the origin. The successor is discovered
// per job (the next peer the origin saw alive at submit time), not
// assumed: a momentary suspicion can route one job's shadow to the other
// survivor. The in-process fixture cuts the origin's network for good;
// the daemon fixture stops the origin daemon process — a crash, no
// goodbye.
func TestConformanceRehomedWatch(t *testing.T) {
	// Long enough that the whole burst is still executing when the origin
	// is killed: the kill then catches every result flush still ahead,
	// and each exercises the redirect-to-successor path rather than
	// racing a discharge from a healthy origin.
	const rehomedIters = 2_000_000
	seeds := []int64{21, 22, 23}

	type port struct {
		client sod.Client
		mgr    *sodee.Manager
	}

	// run drives the surface-independent scenario: discover each job's
	// successor, attach Wait and Watch through it, evacuate the origin
	// (parallel whole-stack migrations), wait for it to settle, kill it,
	// then require every wait and every stream to deliver the re-stamped
	// terminal exactly once. "Settled" means no job is resident at the
	// origin AND no discharge is outstanding: a job that completed while
	// the origin lived must have woken its shadow before the axe falls —
	// its flush already succeeded, so no redirect will ever come for it.
	run := func(t *testing.T, ids []uint64, origin *sodee.Manager, survivors map[int]port, kill func()) {
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()

		// Origin replication is one async link round-trip behind Submit;
		// each job's shadow surfaces as Known at exactly one survivor.
		succOf := make([]int, len(ids))
		deadline := time.Now().Add(20 * time.Second)
		for i, id := range ids {
			for succOf[i] == 0 {
				for node, p := range survivors {
					if p.mgr.Events().Known(id) {
						succOf[i] = node
						break
					}
				}
				if succOf[i] == 0 {
					if time.Now().After(deadline) {
						t.Fatalf("job %d never replicated to a successor", id)
					}
					time.Sleep(time.Millisecond)
				}
			}
		}

		streams := make([]<-chan sod.JobEvent, len(ids))
		waitRes := make([]sod.Value, len(ids))
		waitErr := make([]error, len(ids))
		var waits sync.WaitGroup
		for i, id := range ids {
			succ := survivors[succOf[i]].client
			ch, err := succ.Watch(ctx, id)
			if err != nil {
				t.Fatalf("watch %d at successor %d: %v", id, succOf[i], err)
			}
			streams[i] = ch
			h, err := succ.Job(id)
			if err != nil {
				t.Fatalf("job %d lookup at successor %d: %v", id, succOf[i], err)
			}
			waits.Add(1)
			go func(i int, h sod.JobHandle) {
				defer waits.Done()
				waitRes[i], waitErr[i] = h.Wait(ctx)
			}(i, h)
		}

		var evac sync.WaitGroup
		for i, id := range ids {
			evac.Add(1)
			go func(id uint64, dest int) {
				defer evac.Done()
				job, ok := origin.Job(id)
				if !ok {
					t.Errorf("origin lost job %d", id)
					return
				}
				for !job.Done() {
					if _, err := origin.MigrateSOD(job, sodee.SODOptions{
						NFrames: sodee.WholeStack, Dest: dest,
					}); err == nil {
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}(id, 2+i%2)
		}
		evac.Wait()
		settleBy := time.Now().Add(20 * time.Second)
		for {
			if time.Now().After(settleBy) {
				t.Fatalf("origin never settled: %d jobs still resident", len(origin.RunningJobs()))
			}
			settled := len(origin.RunningJobs()) == 0
			for i, id := range ids {
				if !settled {
					break
				}
				if oj, ok := origin.Job(id); ok && oj.Done() {
					if sj, ok := survivors[succOf[i]].mgr.Job(id); !ok || !sj.Done() {
						settled = false
					}
				}
			}
			if settled {
				break
			}
			time.Sleep(time.Millisecond)
		}
		kill()

		waits.Wait()
		for i := range ids {
			if waitErr[i] != nil {
				t.Fatalf("wait %d (seed %d): %v", ids[i], seeds[i], waitErr[i])
			}
			if want := workloads.CruncherExpected(seeds[i], rehomedIters); waitRes[i].I != want {
				t.Errorf("wait %d (seed %d) = %d, want %d", ids[i], seeds[i], waitRes[i].I, want)
			}
		}
		rehomed := 0
		for i, ch := range streams {
			terminals, lagged, flushed := 0, 0, 0
			var term sod.JobEvent
			for ev := range ch {
				switch {
				case ev.Terminal():
					terminals++
					term = ev
				case ev.Kind == sod.JobLagged:
					lagged++
				case ev.Kind == sod.JobResultFlushed:
					flushed++
				}
			}
			if ctx.Err() != nil {
				t.Fatalf("stream %d never ended", ids[i])
			}
			if terminals != 1 {
				t.Errorf("stream %d delivered %d terminals, want exactly 1", ids[i], terminals)
				continue
			}
			if term.Origin != succOf[i] {
				t.Errorf("stream %d terminal Origin = %d, want re-stamped to successor %d", ids[i], term.Origin, succOf[i])
			}
			if want := workloads.CruncherExpected(seeds[i], rehomedIters); term.Result != want {
				t.Errorf("stream %d terminal carried %d, want %d", ids[i], term.Result, want)
			}
			if lagged > 1 {
				t.Errorf("stream %d saw %d EvLagged markers, want at most 1", ids[i], lagged)
			}
			if flushed > 0 {
				rehomed++
			}
		}
		t.Logf("re-homed deliveries: %d/%d (rest discharged before the kill)", rehomed, len(ids))
	}

	submit := func(t *testing.T, cl sod.Client, ctx context.Context) []uint64 {
		ids := make([]uint64, len(seeds))
		for i, s := range seeds {
			h, err := cl.Submit(ctx, "main", sod.Int(s), sod.Int(rehomedIters))
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			ids[i] = h.ID()
		}
		return ids
	}

	t.Run("inprocess", func(t *testing.T) {
		prog, err := daemon.BuildWorkload("cruncher")
		if err != nil {
			t.Fatal(err)
		}
		// Single-slot gates everywhere: the burst round-robins, so no job
		// can finish long before the rest — the kill catches work in
		// flight (same shape as the chaos scenario).
		cluster, err := sod.NewCluster(prog, sod.Gigabit,
			sod.Node{ID: 1, Cores: 1}, sod.Node{ID: 2, Cores: 1}, sod.Node{ID: 3, Cores: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []int{1, 2, 3} {
			workloads.BindCommon(cluster.On(id).VM())
		}
		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		cl1, err := cluster.ClientOn(1)
		if err != nil {
			t.Fatal(err)
		}
		survivors := make(map[int]port)
		for _, id := range []int{2, 3} {
			cl, err := cluster.ClientOn(id)
			if err != nil {
				t.Fatal(err)
			}
			survivors[id] = port{client: cl, mgr: cluster.On(id).Runtime()}
		}
		ids := submit(t, cl1, ctx)
		run(t, ids, cluster.On(1).Runtime(), survivors,
			func() { cluster.Network().SetNodeDown(1, true) })
	})

	t.Run("daemon", func(t *testing.T) {
		mk := func(id int) *daemon.Daemon {
			d, err := daemon.New(daemon.Config{
				ID: id, Cores: 1,
				Policy: "none", Interval: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("boot daemon %d: %v", id, err)
			}
			t.Cleanup(d.Stop)
			return d
		}
		d1, d2, d3 := mk(1), mk(2), mk(3)
		if err := d2.Join(d1.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := d3.Join(d1.Addr()); err != nil {
			t.Fatal(err)
		}
		cl1, err := sod.Dial(d1.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl1.Close() }) //nolint:errcheck
		waitConverged(t, cl1)
		survivors := make(map[int]port)
		for _, d := range []*daemon.Daemon{d2, d3} {
			cl, err := sod.Dial(d.Addr())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() }) //nolint:errcheck
			survivors[d.ID()] = port{client: cl, mgr: d.Node().Mgr}
		}

		ctx, cancel := context.WithTimeout(context.Background(), confTimeout)
		defer cancel()
		ids := submit(t, cl1, ctx)
		run(t, ids, d1.Node().Mgr, survivors, d1.Stop)
	})
}
