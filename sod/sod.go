// Package sod is the public API of the stack-on-demand (SOD) execution
// engine: a Go reproduction of "A Stack-on-Demand Execution Model for
// Elastic Computing" (Ma, Lam, Wang, Zhang — ICPP 2010).
//
// The engine runs programs written for a stack-based virtual machine (the
// SVM; author them with package sodasm) on a cluster of nodes and lets a
// running thread's *top stack frames* migrate between nodes: the paper's
// lightweight alternative to process, thread, or whole-VM migration.
// Objects remain at their home node and fault in on demand through
// exception-driven object faulting; results and updated data flow back
// when a migrated segment completes.
//
// Quick start:
//
//	prog := sodasm.NewProgram()
//	... assemble ...
//	app := sod.Compile(prog.MustBuild())              // preprocess for SOD
//	cluster, _ := sod.NewCluster(app, sod.Gigabit,
//	    sod.Node{ID: 1}, sod.Node{ID: 2})
//	job, _ := cluster.On(1).Start("main", sod.Int(40))
//	cluster.On(1).Migrate(job, sod.Migration{Frames: 1, Dest: 2})
//	result, err := job.Wait()
//
// Migrations can also be automatic: AutoBalance runs an adaptive offload
// engine that watches every node's load signals and spills jobs from
// overloaded nodes onto idle ones:
//
//	b := cluster.AutoBalance(sod.ThresholdPolicy(0, 0), sod.BalanceOptions{})
//	defer b.Stop()
//
// # One client API
//
// Client is the context-aware way to drive a cluster, and the same
// interface works whether the cluster lives in this process or runs as
// sodd daemons on real sockets — code written against it does not care
// where the cluster is:
//
//	cl := cluster.Client()                  // in-process ...
//	cl, err := sod.Dial("127.0.0.1:7101")   // ... or a live daemon
//
//	h, _ := cl.Submit(ctx, "main", sod.Int(42))
//	events, _ := cl.Watch(ctx, h.ID())      // started / migrated / completed
//	result, err := h.Wait(ctx)
//
// Watch streams the job's lifecycle as it happens: where it started,
// every migration with its direction and reason (pushed by the balancer,
// stolen by an idle peer, rebalanced onward), the result flushing home,
// and completion. The sodctl binary surfaces the same stream as
// "sodctl watch -job N".
//
// See examples/ for runnable scenarios (quickstart, multi-domain
// workflow, task roaming, device offload, photo sharing, elastic
// auto-offload, distributed TCP cluster).
package sod

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bytecode"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/preprocess"
	"repro/internal/sodee"
	"repro/internal/value"
	"repro/internal/vm"
)

// Program is a compiled SVM program.
type Program = bytecode.Program

// Value is an SVM runtime value.
type Value = value.Value

// Ref is an object reference.
type Ref = value.Ref

// Int builds an integer value.
func Int(i int64) Value { return value.Int(i) }

// Float builds a float value.
func Float(f float64) Value { return value.Float(f) }

// RefVal builds a reference value.
func RefVal(r Ref) Value { return value.RefVal(r) }

// Null is the null reference value.
func Null() Value { return value.Null() }

// System selects the runtime substrate a node models. The zero value is
// SODEE, the paper's system; the others exist for comparison experiments.
type System = sodee.System

// Node system kinds.
const (
	SODEE    = sodee.SysSODEE
	JDK      = sodee.SysJDK
	GJavaMPI = sodee.SysGJavaMPI
	Jessica2 = sodee.SysJessica2
	Xen      = sodee.SysXen
	Device   = sodee.SysDevice
)

// Link profiles.
var (
	// Gigabit models the paper's cluster interconnect.
	Gigabit = netsim.Gigabit
	// Unlimited disables bandwidth shaping.
	Unlimited = netsim.Unlimited
)

// Kbps builds a bandwidth-limited link profile (device experiments).
func Kbps(k int64) netsim.LinkSpec { return netsim.Kbps(k) }

// DetectionScheme selects how remote objects are detected after migration.
type DetectionScheme int

const (
	// ObjectFaulting is the paper's contribution: zero-cost on the normal
	// path, exception-driven fetch on first access (Fig 5 B2).
	ObjectFaulting DetectionScheme = iota
	// StatusChecks injects a test before every access (Fig 5 B1) — the
	// classical object-DSM baseline, provided for comparison.
	StatusChecks
)

// CompileOptions tunes Compile.
type CompileOptions struct {
	Detection DetectionScheme
	// NoRestoreHandlers skips the Fig 4 restoration handlers (only useful
	// for systems that rebuild frames inside the VM).
	NoRestoreHandlers bool
}

// Compile preprocesses a raw program for SOD execution: statement
// flattening (migration-safe points), object fault handlers, restoration
// handlers. The input is not modified.
func Compile(p *Program) *Program {
	return CompileWith(p, CompileOptions{})
}

// CompileWith is Compile with options.
func CompileWith(p *Program, opts CompileOptions) *Program {
	mode := preprocess.ModeFaulting
	if opts.Detection == StatusChecks {
		mode = preprocess.ModeStatusCheck
	}
	return preprocess.MustPreprocess(p, preprocess.Options{Mode: mode, Restore: !opts.NoRestoreHandlers})
}

// CompileReport returns the per-method transformation report alongside the
// compiled program.
func CompileReport(p *Program, opts CompileOptions) (*Program, *preprocess.Report, error) {
	mode := preprocess.ModeFaulting
	if opts.Detection == StatusChecks {
		mode = preprocess.ModeStatusCheck
	}
	return preprocess.Preprocess(p, preprocess.Options{Mode: mode, Restore: !opts.NoRestoreHandlers})
}

// Node configures one cluster node.
type Node struct {
	ID int
	// System defaults to SODEE.
	System System
	// HeapLimit bounds the node's heap in bytes (0 = unlimited).
	HeapLimit int64
	// Cold starts the node without application classes; they ship on
	// demand when work arrives (the default for worker nodes is warm).
	Cold bool
	// Cores models the node's CPU width: at most Cores threads execute at
	// once, the rest queue (0 = unlimited). Give a weak node one core and
	// a burst of jobs visibly stacks up — the elastic scenario.
	Cores int
	// Slow throttles the node's per-instruction speed (busy-wait spin
	// iterations; 0 = full speed) — the weak-device CPU knob.
	Slow int
}

// Cluster is a set of SOD nodes over a shared fabric.
type Cluster struct {
	inner *sodee.Cluster

	// bal is the most recently started AutoBalance engine; Client.Stats
	// reads its counters.
	mu  sync.Mutex
	bal *Balancer
}

// NewCluster builds a cluster running prog (compile it first) with the
// given link profile between all nodes.
func NewCluster(prog *Program, link netsim.LinkSpec, nodes ...Node) (*Cluster, error) {
	cfgs := make([]sodee.NodeConfig, 0, len(nodes))
	for _, n := range nodes {
		cfgs = append(cfgs, sodee.NodeConfig{
			ID:        n.ID,
			System:    n.System,
			HeapLimit: n.HeapLimit,
			Preloaded: !n.Cold,
			Cores:     n.Cores,
			Slow:      n.Slow,
		})
	}
	inner, err := sodee.NewCluster(prog, link, cfgs...)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// SetLink overrides the link profile between two nodes.
func (c *Cluster) SetLink(a, b int, link netsim.LinkSpec) { c.inner.Net.SetLink(a, b, link) }

// Network exposes the underlying fabric (for NFS setup and stats).
func (c *Cluster) Network() *netsim.Network { return c.inner.Net }

// On returns the handle for node id. It panics on an unknown id: every
// call site chains straight into an operation (cluster.On(1).Start(...)),
// so returning nil — as this method once did — only deferred the crash to
// an opaque nil dereference. Use Lookup for the soft-failure form.
func (c *Cluster) On(id int) *NodeHandle {
	h, ok := c.Lookup(id)
	if !ok {
		panic(fmt.Sprintf("sod: cluster has no node %d", id))
	}
	return h
}

// Lookup returns the handle for node id, reporting whether it exists.
func (c *Cluster) Lookup(id int) (*NodeHandle, bool) {
	n, ok := c.inner.Nodes[id]
	if !ok {
		return nil, false
	}
	return &NodeHandle{n: n}, true
}

// Internal returns the underlying runtime cluster for advanced use (the
// experiment harness).
func (c *Cluster) Internal() *sodee.Cluster { return c.inner }

// NodeHandle operates one node.
type NodeHandle struct {
	n *sodee.Node
}

// ID returns the node id.
func (h *NodeHandle) ID() int { return h.n.ID }

// VM exposes the node's virtual machine (to bind natives, allocate
// arguments, inspect the heap).
func (h *NodeHandle) VM() *vm.VM { return h.n.VM }

// Intern returns an interned string object on this node.
func (h *NodeHandle) Intern(s string) Value { return value.RefVal(h.n.VM.Intern(s)) }

// Runtime exposes the node's migration manager for advanced scenarios.
func (h *NodeHandle) Runtime() *sodee.Manager { return h.n.Mgr }

// Inner exposes the underlying node.
func (h *NodeHandle) Inner() *sodee.Node { return h.n }

// NativeFunc is a simplified native-method implementation for
// applications built on the public API. Errors surface as
// IllegalStateException in the running program.
type NativeFunc func(args []Value) (Value, error)

// BindNative installs fn as the implementation of a declared native on
// this node.
func (h *NodeHandle) BindNative(name string, fn NativeFunc) {
	h.n.VM.BindNativeIfDeclared(name, func(t *vm.Thread, args []Value) (Value, *vm.Raised) {
		res, err := fn(args)
		if err != nil {
			return Value{}, &vm.Raised{ExClass: bytecode.ExIllegalState, Message: err.Error()}
		}
		return res, nil
	})
}

// Start launches a job executing the named method with args.
func (h *NodeHandle) Start(method string, args ...Value) (*Job, error) {
	j, err := h.n.Mgr.StartJob(method, args...)
	if err != nil {
		return nil, err
	}
	return &Job{inner: j}, nil
}

// Flow selects what happens after a migrated segment completes.
type Flow = sodee.Flow

// Migration flows (Fig 1 of the paper).
const (
	// ReturnHome: the segment's return value comes back; execution resumes
	// on the residual stack at the home node (Fig 1a).
	ReturnHome = sodee.FlowReturnHome
	// Total: the residual stack follows; execution continues at the
	// destination (Fig 1b).
	Total = sodee.FlowTotal
	// Forward: the residual is planted on a third node and control flows
	// there after the segment pops (Fig 1c).
	Forward = sodee.FlowForward
)

// Migration describes one stack-on-demand migration.
type Migration struct {
	// Frames is the segment size: how many top frames to export.
	Frames int
	// Dest runs the segment.
	Dest int
	// Flow defaults to ReturnHome.
	Flow Flow
	// ForwardTo hosts the residual when Flow == Forward.
	ForwardTo int
}

// Metrics is the cost breakdown of one migration.
type Metrics = sodee.MigrationMetrics

// Migrate performs a SOD migration of the job's running thread: the
// thread is suspended at its next migration-safe point, the top Frames
// frames are captured and shipped, and execution resumes at Dest.
func (h *NodeHandle) Migrate(job *Job, m Migration) (*Metrics, error) {
	return h.n.Mgr.MigrateSOD(job.inner, sodee.SODOptions{
		NFrames: m.Frames, Dest: m.Dest, Flow: m.Flow, ForwardTo: m.ForwardTo,
	})
}

// MigrateProcess performs G-JavaMPI-style eager process migration
// (comparison baseline).
func (h *NodeHandle) MigrateProcess(job *Job, dest int) (*Metrics, error) {
	return h.n.Mgr.MigrateProcess(job.inner, dest)
}

// MigrateThread performs JESSICA2-style thread migration (baseline).
func (h *NodeHandle) MigrateThread(job *Job, dest int) (*Metrics, error) {
	return h.n.Mgr.MigrateThread(job.inner, dest)
}

// Job is a running (possibly migrating) computation.
type Job struct {
	inner *sodee.Job
}

// ID returns the job's identity at its origin node (the id Client.Watch
// takes).
func (j *Job) ID() uint64 { return j.inner.ID }

// Wait blocks for the job's final result, wherever it completes.
func (j *Job) Wait() (Value, error) { return j.inner.Wait() }

// WaitContext blocks for the final result or the context's end, whichever
// comes first. No goroutine is spawned; an abandoned wait leaks nothing.
// A ctx error means the wait ended — the job itself is still running.
func (j *Job) WaitContext(ctx context.Context) (Value, error) {
	return j.inner.WaitContext(ctx)
}

// Done reports completion without blocking.
func (j *Job) Done() bool { return j.inner.Done() }

// Inner exposes the runtime job.
func (j *Job) Inner() *sodee.Job { return j.inner }

// --- adaptive offload (the policy engine) ---

// Policy decides when and where running jobs migrate; see package
// internal/policy for the contract. Built-in policies: ThresholdPolicy,
// CostModelPolicy, RoundRobinPolicy.
type Policy = policy.Policy

// Signals is one node's published load report.
type Signals = policy.Signals

// Balancer is a running adaptive-offload engine; Stop halts it.
type Balancer = sodee.Balancer

// BalanceOptions tunes AutoBalance; the zero value gives a 1ms decision
// interval and whole-stack return-home migrations. Set Steal to arm the
// pull half (idle nodes steal from loaded peers); HopBudget and Cooldown
// bound multi-hop re-balancing (how many times any one job may move, and
// how soon it may revisit a node it left).
type BalanceOptions = sodee.BalanceOptions

// StealStats counts one node's work-stealing activity (requests sent and
// won, served, granted, denied, failed transfers).
type StealStats = sodee.StealStats

// NeverPolicy never pushes: combine with BalanceOptions.Steal for a
// steal-only balancer where migration is purely pull-driven, or with
// BalanceOptions.Chain for a chain-only balancer where the planner owns
// every placement.
func NeverPolicy() Policy { return policy.Never{} }

// ChainPlanner tunes the workflow chain planner armed by
// BalanceOptions.Chain: how many segments a stack may split into, the
// minimum depth and throughput gain worth chaining, and the RTT/locality
// weights used to rank destination nodes. The zero value selects
// defaults. Jobs opt in per submission via Client.SubmitChain (or every
// job with BalanceOptions.ChainAll); the planner splits a chained job's
// parked stack by per-frame cost, plants each residual segment on its
// node ahead of execution (Fig 1c), and the balancer re-plans or degrades
// links when nodes fail mid-chain — a crash never wedges the chain.
type ChainPlanner = policy.ChainPlanner

// BalanceStats aggregates a balancer's activity.
type BalanceStats = sodee.BalanceStats

// ThresholdPolicy migrates when the local node has more than highWater
// runnable threads and some peer has at least margin fewer (0s =
// defaults: 1 and 2). The watermark baseline.
func ThresholdPolicy(highWater, margin int) Policy {
	return policy.Threshold{HighWater: highWater, Margin: margin}
}

// CostModelPolicy weighs throughput gain, object-fault locality and link
// RTT and migrates when the net score clears minGain (0 = default 0.25).
func CostModelPolicy(minGain float64) Policy {
	return policy.CostModel{MinGain: minGain}
}

// RoundRobinPolicy scatters jobs over peers blindly — the baseline the
// adaptive policies are measured against.
func RoundRobinPolicy() Policy { return &policy.RoundRobin{} }

// AutoBalance starts the adaptive offload engine: nodes gossip load
// signals every interval, and p decides per running job whether to stay
// or migrate and where. Verdicts execute as whole-stack SOD migrations;
// unreachable destinations are marked failed and never chosen again, and
// a migration that fails in flight falls back to local execution. With
// opts.Steal set, idle nodes additionally pull jobs from loaded peers
// (work stealing), and migrated-in jobs remain eligible for further
// moves within opts.HopBudget and opts.Cooldown — results still flush
// straight back to each job's origin. Stop the returned Balancer when
// done.
func (c *Cluster) AutoBalance(p Policy, opts BalanceOptions) *Balancer {
	b := c.inner.AutoBalance(p, opts)
	c.mu.Lock()
	c.bal = b
	c.mu.Unlock()
	return b
}

// WaitTimeout waits up to d for the result; done is false on timeout.
//
// Deprecated: use WaitContext (or Client/JobHandle.Wait) with a deadline
// context. WaitTimeout used to leave a goroutine parked on the job until
// it eventually finished; it is now a thin shim over WaitContext and will
// be removed in a future release.
func (j *Job) WaitTimeout(d time.Duration) (Value, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	v, err := j.inner.WaitContext(ctx)
	if err != nil && errors.Is(err, context.DeadlineExceeded) && !j.inner.Done() {
		return Value{}, false, nil
	}
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		// The job finished in the instant the deadline fired; report the
		// real outcome.
		v, err = j.inner.Wait()
	}
	return v, true, err
}
