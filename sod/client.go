package sod

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/daemon"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/sodee"
	"repro/internal/value"
)

// One client API for every way a SOD cluster can run. Client is
// implemented by both the in-process cluster (Cluster.Client) and a
// control connection to a live sodd daemon (Dial), so an application,
// example or test written against it runs unchanged over the simulated
// fabric and over real TCP daemons — the migration transparency the
// paper promises, extended to the operator surface. The conformance
// suite in client_conformance_test.go runs the same scenarios against
// both implementations to keep them from drifting.

// Client drives one SOD cluster through a single node: submit jobs, wait
// for results, inspect membership and balancer activity, and stream a
// job's lifecycle events as it migrates around the cluster.
type Client interface {
	// Submit starts a job executing the named method and returns its
	// handle. Daemon-backed clients carry integer arguments only.
	Submit(ctx context.Context, method string, args ...Value) (JobHandle, error)
	// SubmitChain starts a chain-owned job: when the cluster balances
	// with the Chain option, the chain planner splits the job's stack
	// into a multi-segment FlowForward pipeline — each segment on the
	// best node, residuals planted ahead of execution, the result
	// forwarded node to node and flushed to this submission point. Watch
	// shows the chain as segment-planted / segment-forwarded events.
	// Without a chain-armed balancer the mark has no effect: the job
	// balances like any ordinary submission.
	SubmitChain(ctx context.Context, method string, args ...Value) (JobHandle, error)
	// Job returns the handle of a previously submitted job (results of
	// recently completed jobs remain queryable; daemons retain the last
	// 256).
	Job(id uint64) (JobHandle, error)
	// Members returns the connected node's view of the cluster: itself
	// plus every peer its failure detector tracks.
	Members(ctx context.Context) ([]Member, error)
	// Stats returns the connected node's balancer and steal counters.
	Stats(ctx context.Context) (ClusterStats, error)
	// Watch streams a job's lifecycle: started, every migration (pushed,
	// stolen or rebalanced, with source, destination and hop count), the
	// result flushing home, completed. Retained history replays first, so
	// watching after submission loses nothing. The channel closes after
	// the terminal event, when ctx ends, or when the connection to the
	// cluster is lost.
	Watch(ctx context.Context, jobID uint64) (<-chan JobEvent, error)
	// WatchAll streams every job event from every node in the cluster
	// through one subscription — the feed behind dashboards and sodctl
	// top. Streams are keyed by (Origin, Job): job ids are only unique
	// per origin node. No history replays; the stream starts now. The
	// channel never closes on any one job's terminal event — it closes
	// when ctx ends, when the connection is lost, or when the cluster
	// evicts this consumer for not draining (the backpressure contract:
	// a slow consumer's non-terminal events are coalesced away behind
	// JobLagged markers carrying the drop count; terminal events are
	// never silently dropped, so a consumer that counts completions
	// stays exact — one too slow to keep even job outcomes is evicted,
	// observed as the channel closing while ctx is still live).
	WatchAll(ctx context.Context) (<-chan JobEvent, error)
	// Metrics snapshots the connected node's metrics registry: counters,
	// gauges and histograms covering migrations (per reason and phase),
	// chain planting/forwarding, steals, result flushing, the event bus
	// and membership transitions. Per-node; merge snapshots across nodes
	// with MetricsSnapshot.Merge for a cluster view.
	Metrics(ctx context.Context) (*MetricsSnapshot, error)
	// Trace returns a job's span timeline: one root span for the job's
	// lifetime plus a capture/transfer/restore triple under each
	// migration hop and a plant/forward span per chain segment, causally
	// ordered at the job's origin node (spans from remote hops ride home
	// over the data plane). Ask through the node that started the job;
	// traces for the last 256 jobs are retained.
	Trace(ctx context.Context, jobID uint64) ([]TraceSpan, error)
	// Close releases the client's resources. The cluster keeps running.
	Close() error
}

// MetricsSnapshot is a point-in-time copy of one node's metrics
// registry (see internal/obs): RenderPrometheus gives the text
// exposition, Merge folds several nodes into a cluster view.
type MetricsSnapshot = obs.Snapshot

// TraceSpan is one entry of a job's migration timeline; RenderSpans
// formats a whole trace the way sodctl trace does.
type TraceSpan = obs.Span

// RenderSpans formats a job trace as an indented, causally-ordered
// timeline (the sodctl trace rendering).
func RenderSpans(spans []TraceSpan) string { return obs.RenderTrace(spans) }

// JobHandle is one submitted job. It replaces the Wait/WaitTimeout pair:
// cancellation and deadlines come from the context, and an abandoned
// Wait leaks nothing.
type JobHandle interface {
	// ID is the job's identity at its origin node — the id Watch takes.
	ID() uint64
	// Wait blocks for the job's final result, wherever in the cluster it
	// completes. A ctx error means the wait ended, not the job.
	Wait(ctx context.Context) (Value, error)
	// Done reports completion without blocking.
	Done() bool
}

// JobEvent is one entry of a job's lifecycle stream; see the Kind for
// which fields apply.
type JobEvent = sodee.JobEvent

// EventKind discriminates job lifecycle events.
type EventKind = sodee.EventKind

// Job lifecycle event kinds.
const (
	JobStarted          = sodee.EvStarted
	JobMigrated         = sodee.EvMigrated
	JobResultFlushed    = sodee.EvResultFlushed
	JobCompleted        = sodee.EvCompleted
	JobMigrationFailed  = sodee.EvMigrationFailed
	JobSegmentPlanted   = sodee.EvSegmentPlanted
	JobSegmentForwarded = sodee.EvSegmentForwarded
	// JobLagged is synthetic, per-subscription: the consumer fell behind
	// and Result non-terminal events were coalesced away since the
	// previous delivery. Terminal events are never coalesced.
	JobLagged = sodee.EvLagged
)

// MigrateReason says which side of the elasticity engine moved a job.
type MigrateReason = sodee.MigrateReason

// Migration reasons carried by JobMigrated events.
const (
	MigrateManual     = sodee.ReasonManual
	MigratePushed     = sodee.ReasonPushed
	MigrateStolen     = sodee.ReasonStolen
	MigrateRebalanced = sodee.ReasonRebalanced
	MigrateChained    = sodee.ReasonChained
)

// MemberState is a failure detector's verdict on a peer.
type MemberState = membership.State

// Member is one row of a node's cluster view.
type Member struct {
	Node  int
	State MemberState
	// SinceHeard is how long ago the node last had evidence the member
	// was alive (zero for itself).
	SinceHeard time.Duration
	// Addr is the member's listen address (daemon clusters only).
	Addr string
	// Self marks the node the client is connected to.
	Self bool
}

// ClusterStats aggregates the connected node's elasticity counters.
type ClusterStats struct {
	Balance BalanceStats
	Steal   StealStats
}

// --- in-process implementation ---

// Client returns a Client driving this cluster through its lowest-id
// node. ClientOn selects a specific node.
func (c *Cluster) Client() Client {
	ids := make([]int, 0, len(c.inner.Nodes))
	for id := range c.inner.Nodes {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		panic("sod: Client on a cluster with no nodes")
	}
	sort.Ints(ids)
	cl, err := c.ClientOn(ids[0])
	if err != nil {
		panic(err) // unreachable: the id came from the node table
	}
	return cl
}

// ClientOn returns a Client submitting through node id.
func (c *Cluster) ClientOn(id int) (Client, error) {
	n, ok := c.inner.Nodes[id]
	if !ok {
		return nil, fmt.Errorf("sod: cluster has no node %d", id)
	}
	return &clusterClient{c: c, n: n}, nil
}

type clusterClient struct {
	c *Cluster
	n *sodee.Node
}

func (cc *clusterClient) Submit(ctx context.Context, method string, args ...Value) (JobHandle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	j, err := cc.n.Mgr.StartJob(method, args...)
	if err != nil {
		return nil, err
	}
	return localJob{j}, nil
}

func (cc *clusterClient) SubmitChain(ctx context.Context, method string, args ...Value) (JobHandle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	j, err := cc.n.Mgr.StartJobChained(method, args...)
	if err != nil {
		return nil, err
	}
	return localJob{j}, nil
}

func (cc *clusterClient) Job(id uint64) (JobHandle, error) {
	j, ok := cc.n.Mgr.Job(id)
	if !ok {
		return nil, fmt.Errorf("sod: no job %d", id)
	}
	return localJob{j}, nil
}

func (cc *clusterClient) Members(ctx context.Context) ([]Member, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	now := time.Now()
	out := []Member{{Node: cc.n.ID, State: membership.Alive, Self: true}}
	for _, m := range cc.n.Members.Snapshot() {
		out = append(out, Member{
			Node:       m.Node,
			State:      m.State,
			SinceHeard: now.Sub(m.LastHeard),
		})
	}
	sortMembers(out)
	return out, nil
}

func (cc *clusterClient) Stats(ctx context.Context) (ClusterStats, error) {
	if err := ctx.Err(); err != nil {
		return ClusterStats{}, err
	}
	st := ClusterStats{Steal: cc.n.Mgr.StealStats()}
	cc.c.mu.Lock()
	bal := cc.c.bal
	cc.c.mu.Unlock()
	if bal != nil {
		st.Balance = bal.Stats()
	}
	return st, nil
}

func (cc *clusterClient) Watch(ctx context.Context, jobID uint64) (<-chan JobEvent, error) {
	bus := cc.n.Mgr.Events()
	if !bus.Known(jobID) {
		return nil, fmt.Errorf("sod: no job %d", jobID)
	}
	inner, cancel := bus.Subscribe(jobID)
	return watchWithContext(ctx, inner, cancel), nil
}

// WatchAll on the in-process surface merges every node's bus firehose
// into one stream — the same merged feed a daemon's hub serves, without
// the wire. Per-node forwarders block on a slow consumer, which pushes
// the backpressure into each bus's per-subscription ring where the
// coalescing/eviction contract lives.
func (cc *clusterClient) WatchAll(ctx context.Context) (<-chan JobEvent, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type feed struct {
		ch     <-chan JobEvent
		cancel func()
	}
	feeds := make([]feed, 0, len(cc.c.inner.Nodes))
	for _, n := range cc.c.inner.Nodes {
		ch, cancel := n.Mgr.Events().SubscribeAll()
		feeds = append(feeds, feed{ch, cancel})
	}
	out := make(chan JobEvent, 64)
	var wg sync.WaitGroup
	for _, f := range feeds {
		wg.Add(1)
		go func(f feed) {
			defer wg.Done()
			defer f.cancel()
			for {
				select {
				case ev, ok := <-f.ch:
					if !ok {
						return // evicted
					}
					select {
					case out <- ev:
					case <-ctx.Done():
						return
					}
				case <-ctx.Done():
					return
				}
			}
		}(f)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

func (cc *clusterClient) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cc.n.Obs.Snapshot(), nil
}

func (cc *clusterClient) Trace(ctx context.Context, jobID uint64) ([]TraceSpan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spans := cc.n.Trace.Get(jobID)
	if len(spans) == 0 {
		return nil, fmt.Errorf("sod: no trace for job %d (wrong origin node, or evicted)", jobID)
	}
	return spans, nil
}

func (cc *clusterClient) Close() error { return nil }

// localJob adapts a runtime job to JobHandle.
type localJob struct{ j *sodee.Job }

func (h localJob) ID() uint64 { return h.j.ID }
func (h localJob) Done() bool { return h.j.Done() }
func (h localJob) Wait(ctx context.Context) (Value, error) {
	return h.j.WaitContext(ctx)
}

// --- daemon-backed implementation ---

// Dial connects a Client to the sodd daemon at addr; the control-protocol
// versions must match (a skew fails here, with a clear error).
func Dial(addr string) (Client, error) { return DialTimeout(addr, 0) }

// DialTimeout is Dial with a bound on how long a dead address is retried
// (0 keeps the default, ~5s).
func DialTimeout(addr string, timeout time.Duration) (Client, error) {
	dc, err := daemon.DialTimeout(addr, timeout)
	if err != nil {
		return nil, err
	}
	return &daemonClient{c: dc}, nil
}

type daemonClient struct {
	c *daemon.Client
}

// callCtx runs one blocking control RPC while honoring ctx: the RPC
// itself is bounded by the transport, and a canceled context abandons
// the wait (the goroutine drains when the call returns).
func callCtx[T any](ctx context.Context, f func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := f()
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

func (dc *daemonClient) Submit(ctx context.Context, method string, args ...Value) (JobHandle, error) {
	return dc.submit(ctx, dc.c.Submit, method, args)
}

func (dc *daemonClient) SubmitChain(ctx context.Context, method string, args ...Value) (JobHandle, error) {
	return dc.submit(ctx, dc.c.SubmitChain, method, args)
}

func (dc *daemonClient) submit(ctx context.Context, op func(string, ...int64) (uint64, error), method string, args []Value) (JobHandle, error) {
	ints := make([]int64, len(args))
	for i, a := range args {
		if a.Kind != value.KindInt {
			return nil, fmt.Errorf("sod: daemon submissions carry integer arguments only (arg %d is %v)", i, a.Kind)
		}
		ints[i] = a.I
	}
	id, err := callCtx(ctx, func() (uint64, error) { return op(method, ints...) })
	if err != nil {
		return nil, err
	}
	return &remoteJob{c: dc.c, id: id}, nil
}

func (dc *daemonClient) Job(id uint64) (JobHandle, error) {
	// Probe: a zero-timeout wait answers instantly and errors for an
	// unknown id.
	if _, _, _, err := dc.c.Wait(id, 0); err != nil {
		return nil, err
	}
	return &remoteJob{c: dc.c, id: id}, nil
}

func (dc *daemonClient) Members(ctx context.Context) ([]Member, error) {
	type reply struct {
		self    int
		members []daemon.MemberInfo
	}
	rep, err := callCtx(ctx, func() (reply, error) {
		self, members, err := dc.c.Members()
		return reply{self, members}, err
	})
	if err != nil {
		return nil, err
	}
	out := []Member{{Node: rep.self, State: membership.Alive, Self: true}}
	for _, m := range rep.members {
		out = append(out, Member{
			Node:       m.Node,
			State:      m.State,
			SinceHeard: m.SinceHeard,
			Addr:       m.Addr,
		})
	}
	sortMembers(out)
	return out, nil
}

func (dc *daemonClient) Stats(ctx context.Context) (ClusterStats, error) {
	return callCtx(ctx, func() (ClusterStats, error) {
		bal, steal, err := dc.c.Stats()
		return ClusterStats{Balance: bal, Steal: steal}, err
	})
}

func (dc *daemonClient) Watch(ctx context.Context, jobID uint64) (<-chan JobEvent, error) {
	inner, cancel, err := dc.c.Watch(jobID)
	if err != nil {
		return nil, err
	}
	return watchWithContext(ctx, inner, cancel), nil
}

func (dc *daemonClient) WatchAll(ctx context.Context) (<-chan JobEvent, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	inner, cancel, err := dc.c.WatchAll()
	if err != nil {
		return nil, err
	}
	return streamWithContext(ctx, inner, cancel), nil
}

func (dc *daemonClient) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	return callCtx(ctx, dc.c.Metrics)
}

func (dc *daemonClient) Trace(ctx context.Context, jobID uint64) ([]TraceSpan, error) {
	return callCtx(ctx, func() ([]TraceSpan, error) { return dc.c.Trace(jobID) })
}

func (dc *daemonClient) Close() error {
	dc.c.Close()
	return nil
}

// remoteJob adapts the daemon control protocol to JobHandle.
type remoteJob struct {
	c  *daemon.Client
	id uint64
}

func (h *remoteJob) ID() uint64 { return h.id }

func (h *remoteJob) Wait(ctx context.Context) (Value, error) {
	res, errMsg, err := h.c.WaitContext(ctx, h.id)
	if err != nil {
		return Value{}, err
	}
	if errMsg != "" {
		return Value{}, fmt.Errorf("sod: job %d failed: %s", h.id, errMsg)
	}
	return Int(res), nil
}

func (h *remoteJob) Done() bool {
	_, done, _, err := h.c.Wait(h.id, 0)
	return err == nil && done
}

// watchWithContext bridges a raw event channel to one whose lifetime is
// bounded by ctx: events forward until the stream ends or ctx does, and
// the subscription is released either way. A terminal event ends the
// stream — the per-job shape.
func watchWithContext(ctx context.Context, inner <-chan JobEvent, cancel func()) <-chan JobEvent {
	return bridge(ctx, inner, cancel, true)
}

// streamWithContext is watchWithContext for endless streams (WatchAll):
// terminal events pass through without closing the channel.
func streamWithContext(ctx context.Context, inner <-chan JobEvent, cancel func()) <-chan JobEvent {
	return bridge(ctx, inner, cancel, false)
}

func bridge(ctx context.Context, inner <-chan JobEvent, cancel func(), endOnTerminal bool) <-chan JobEvent {
	out := make(chan JobEvent, 32)
	go func() {
		defer close(out)
		defer cancel()
		for {
			select {
			case ev, ok := <-inner:
				if !ok {
					return
				}
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
				if ev.Terminal() && endOnTerminal {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

func sortMembers(ms []Member) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Node < ms[j].Node })
}
