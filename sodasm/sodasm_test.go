package sodasm_test

import (
	"strings"
	"testing"

	"repro/sod"
	"repro/sodasm"
)

func TestDocExampleBuildsAndRuns(t *testing.T) {
	pb := sodasm.NewProgram()
	fib := pb.Func("fib", true, "n")
	fib.Line().Load("n").Int(2).Lt().Jnz("base")
	fib.Line().Load("n").Int(1).Sub().Call("fib", 1).Store("a")
	fib.Line().Load("n").Int(2).Sub().Call("fib", 1).Store("b")
	fib.Line().Load("a").Load("b").Add().RetV()
	fib.Label("base")
	fib.Line().Load("n").RetV()
	prog := pb.MustBuild()

	app := sod.Compile(prog)
	cluster, err := sod.NewCluster(app, sod.Unlimited, sod.Node{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	job, err := cluster.On(1).Start("fib", sod.Int(12))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 144 {
		t.Errorf("fib(12) = %d, want 144", res.I)
	}
}

func TestExportedKindsAndClasses(t *testing.T) {
	pb := sodasm.NewProgram()
	c := pb.Class("T", "")
	c.Field("i", sodasm.KindInt)
	c.Field("f", sodasm.KindFloat)
	c.Field("r", sodasm.KindRef)
	m := pb.Func("main", true)
	m.Line().Int(8).NewArr(sodasm.ArrByte).ArrLen().RetV()
	prog := pb.MustBuild()
	if prog.ClassByName(sodasm.ObjectClass) < 0 || prog.ClassByName(sodasm.OutOfMemoryError) < 0 {
		t.Error("builtin class constants should resolve")
	}
}

func TestDisassembleExport(t *testing.T) {
	pb := sodasm.NewProgram()
	m := pb.Func("main", true)
	m.Line().Int(1).RetV()
	out := sodasm.Disassemble(pb.MustBuild())
	if !strings.Contains(out, "func main") {
		t.Errorf("disassembly: %s", out)
	}
}
