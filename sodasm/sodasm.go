// Package sodasm is the public assembler for SVM programs: a fluent
// builder over the instruction set described in internal/bytecode. Write
// application code with it, then hand the built program to sod.Compile.
//
//	pb := sodasm.NewProgram()
//	fib := pb.Func("fib", true, "n")
//	fib.Line().Load("n").Int(2).Lt().Jnz("base")
//	fib.Line().Load("n").Int(1).Sub().Call("fib", 1).Store("a")
//	fib.Line().Load("n").Int(2).Sub().Call("fib", 1).Store("b")
//	fib.Line().Load("a").Load("b").Add().RetV()
//	fib.Label("base")
//	fib.Line().Load("n").RetV()
//	prog := pb.MustBuild()
//
// Conventions that keep code migratable (the class preprocessor enforces
// them and falls back to non-migratable code otherwise):
//
//   - mark statement boundaries with Line(); the operand stack must be
//     empty there (it is, if each Line() chain ends in a store, a branch,
//     a return or a void call);
//   - jump targets must be statement starts;
//   - avoid Dup/Swap (use named locals instead).
package sodasm

import (
	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/value"
)

// ProgramBuilder accumulates classes, methods and natives.
type ProgramBuilder = asm.ProgramBuilder

// ClassBuilder declares one class.
type ClassBuilder = asm.ClassBuilder

// MethodBuilder emits one method body.
type MethodBuilder = asm.MethodBuilder

// NewProgram returns an empty builder with the builtin classes declared.
func NewProgram() *ProgramBuilder { return asm.NewProgram() }

// Field kinds for Class.Field / Class.Static declarations.
const (
	KindInt   = value.KindInt
	KindFloat = value.KindFloat
	KindRef   = value.KindRef
)

// Array element kinds for NewArr.
const (
	ArrInt   = bytecode.ArrKindInt
	ArrFloat = bytecode.ArrKindFloat
	ArrByte  = bytecode.ArrKindByte
	ArrRef   = bytecode.ArrKindRef
)

// Builtin class names usable in Try / ThrowNew.
const (
	NullPointerException      = bytecode.ExNullPointer
	ArithmeticException       = bytecode.ExArithmetic
	IndexOutOfBoundsException = bytecode.ExIndexOutOfBounds
	ClassCastException        = bytecode.ExClassCast
	OutOfMemoryError          = bytecode.ExOutOfMemory
	IllegalStateException     = bytecode.ExIllegalState
	ObjectClass               = bytecode.ClassObject
	StringClass               = bytecode.ClassString
)

// Disassemble renders a compiled program as readable assembly.
func Disassemble(p *bytecode.Program) string { return bytecode.DisassembleProgram(p) }
