# Development entry points. `make check` is the full gate: static vetting,
# a clean build, the race-enabled test suite (the policy engine reads load
# signals across goroutines, so -race is part of the contract, not an
# extra), and a smoke run of the elastic benchmark comparing the adaptive
# offload policy against the no-migration baseline.

GO ?= go

.PHONY: check vet build test race bench-smoke elastic cluster-smoke

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A fast end-to-end pass over the adaptive-offload benchmark: small burst,
# short jobs — seconds, not minutes.
bench-smoke:
	$(GO) run ./cmd/sodbench -table elastic -elastic-jobs 4 -elastic-iters 40000

# The full elastic comparison at default size.
elastic:
	$(GO) run ./cmd/sodbench -table elastic

# Boot the 3-node TCP cluster integration tests standalone: membership
# discovery, AutoBalance over real sockets, heartbeat crash detection.
cluster-smoke:
	$(GO) test -race -count=1 -v ./internal/daemon
