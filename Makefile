# Development entry points. `make check` is the full gate: static vetting,
# a clean build, the race-enabled test suite (the policy engine reads load
# signals across goroutines, so -race is part of the contract, not an
# extra), and a smoke run of the elastic benchmark comparing the adaptive
# offload policy against the no-migration baseline.

GO ?= go

# Seed matrix for the chaos harness (comma-separated; each seed derives a
# distinct set of job identities for every scenario).
CHAOS_SEEDS ?= 1,7,42

.PHONY: check vet build build-examples test race bench-smoke elastic cluster-smoke chaos

check: vet build build-examples race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Examples are main packages with no tests, so nothing but an explicit
# build exercises them; naming them keeps a future build-tag or module
# shuffle from silently dropping them out of the gate.
build-examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A fast end-to-end pass over the adaptive-offload benchmark: small burst,
# short jobs — seconds, not minutes.
bench-smoke:
	$(GO) run ./cmd/sodbench -table elastic -elastic-jobs 4 -elastic-iters 40000

# The full elastic comparison at default size.
elastic:
	$(GO) run ./cmd/sodbench -table elastic

# Boot the 3-node TCP cluster integration tests standalone: membership
# discovery, AutoBalance over real sockets, heartbeat crash detection.
cluster-smoke:
	$(GO) test -race -count=1 -v ./internal/daemon

# The chaos harness under -race across the fixed seed matrix: scripted
# crashes, rejoins and slowdowns while the balancer pushes, steals and
# re-balances — every job must complete exactly once — plus the workflow
# chain scenario, which kills a mid-chain node between plant and forward
# and requires exactly-once completion with the result flushed at the
# origin. Output is mirrored to chaos.log (CI uploads it on failure).
chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -count=1 -run 'TestChaosScenarios|TestChainChaosMidChainCrash|TestSwarmChaosWatchedCrash' -v ./internal/sodee > chaos.log 2>&1; \
	status=$$?; cat chaos.log; exit $$status
