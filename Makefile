# Development entry points. `make check` is the full gate: static vetting,
# a clean build, the race-enabled test suite (the policy engine reads load
# signals across goroutines, so -race is part of the contract, not an
# extra), and a smoke run of the elastic benchmark comparing the adaptive
# offload policy against the no-migration baseline.

GO ?= go

# Seed matrix for the chaos harness (comma-separated; each seed derives a
# distinct set of job identities for every scenario).
CHAOS_SEEDS ?= 1,7,42

.PHONY: check vet build build-examples test race bench-smoke elastic cluster-smoke obs-smoke chaos wire-gate

check: vet build build-examples race bench-smoke wire-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Examples are main packages with no tests, so nothing but an explicit
# build exercises them; naming them keeps a future build-tag or module
# shuffle from silently dropping them out of the gate.
build-examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A fast end-to-end pass over the adaptive-offload benchmark: small burst,
# short jobs — seconds, not minutes.
bench-smoke:
	$(GO) run ./cmd/sodbench -table elastic -elastic-jobs 4 -elastic-iters 40000

# The full elastic comparison at default size.
elastic:
	$(GO) run ./cmd/sodbench -table elastic

# The migration wire-format benchmark at CI smoke scale, gated against
# the committed baseline: fails when warm-hop bytes-per-migration (or
# capture→resume latency, beyond sleep-granularity noise) regresses more
# than 30% against BENCH_wire.json. The fresh report lands in
# BENCH_wire_ci.json so CI can upload the trajectory per-commit.
wire-gate:
	$(GO) run ./cmd/sodbench -table wire -short -json -wire-out BENCH_wire_ci.json -baseline BENCH_wire.json

# Boot the 3-node TCP cluster integration tests standalone: membership
# discovery, AutoBalance over real sockets, heartbeat crash detection,
# and the observability plane (opMetrics/opTrace, the -obs endpoint).
cluster-smoke:
	$(GO) test -race -count=1 -v ./internal/daemon

# Live-endpoint smoke: boot the real sodd binary with -obs, run one job
# through it with the real sodctl binary, then curl /metrics off the
# running process and fail on empty or malformed output (every
# non-comment line must be exactly "name value"). This is the check CI
# runs against the shipped binaries, not the test harness.
obs-smoke:
	@set -e; \
	$(GO) build -o ./sodd.smoke ./cmd/sodd; \
	$(GO) build -o ./sodctl.smoke ./cmd/sodctl; \
	./sodd.smoke -id 1 -listen 127.0.0.1:7391 -obs 127.0.0.1:7392 -quiet & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -f sodd.smoke sodctl.smoke' EXIT; \
	for i in $$(seq 1 50); do curl -sf -o /dev/null http://127.0.0.1:7392/metrics && break; sleep 0.2; done; \
	./sodctl.smoke -addr 127.0.0.1:7391 run -method main -args 7,50000 >/dev/null; \
	out=$$(curl -sf http://127.0.0.1:7392/metrics); \
	test -n "$$out" || { echo "obs-smoke: /metrics returned nothing"; exit 1; }; \
	echo "$$out" | grep -q '^sod_events_published_total' || { echo "obs-smoke: no sod_ samples in /metrics"; echo "$$out"; exit 1; }; \
	echo "$$out" | awk '!/^#/ && NF != 2 { print "obs-smoke: malformed line: " $$0; bad = 1 } END { exit bad }'; \
	echo "obs-smoke: ok ($$(echo "$$out" | grep -c -v '^#') samples)"

# The chaos harness under -race across the fixed seed matrix: scripted
# crashes, rejoins and slowdowns while the balancer pushes, steals and
# re-balances — every job must complete exactly once — plus the workflow
# chain scenario, which kills a mid-chain node between plant and forward
# and requires exactly-once completion with the result flushed at the
# origin, and the origin-permanent-death scenario, which kills a watched
# burst's origin for good and requires the successor to deliver every
# result and terminal exactly once. Output is mirrored to chaos.log (CI
# uploads it on failure).
chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -count=1 -run 'TestChaosScenarios|TestChainChaosMidChainCrash|TestSwarmChaosWatchedCrash|TestChaosOriginPermanentDeath' -v ./internal/sodee > chaos.log 2>&1; \
	status=$$?; cat chaos.log; exit $$status
